"""Tiny DenseNet-121 (Huang et al., CVPR 2017) on the numpy substrate.

Dense blocks concatenate every layer's output to the running feature map;
transition layers compress channels and downsample.  The 3x3 convolutions
inside dense layers are the substitutable slots.
"""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.layers import AdaptiveAvgPool2d, AvgPool2d, BatchNorm2d, Conv2d, Linear, ReLU
from repro.nn.models.common import ConvFactory, ConvSlot, default_conv_factory
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class DenseLayer(Module):
    """BN -> ReLU -> 3x3 conv producing ``growth_rate`` new channels."""

    def __init__(self, name: str, in_channels: int, growth_rate: int, spatial: int,
                 conv_factory: ConvFactory) -> None:
        super().__init__()
        self.bn = BatchNorm2d(in_channels)
        self.relu = ReLU()
        self.conv = conv_factory(ConvSlot(name, in_channels, growth_rate, spatial, 3, 1))

    def forward(self, x: Tensor) -> Tensor:
        new_features = self.conv(self.relu(self.bn(x)))
        return F.concatenate([x, new_features], axis=1)


class Transition(Module):
    """1x1 compression convolution followed by 2x2 average pooling."""

    def __init__(self, in_channels: int, out_channels: int) -> None:
        super().__init__()
        self.bn = BatchNorm2d(in_channels)
        self.relu = ReLU()
        self.conv = Conv2d(in_channels, out_channels, kernel_size=1, padding=0)
        self.pool = AvgPool2d(2)

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.conv(self.relu(self.bn(x))))


class DenseNet(Module):
    """A scaled-down DenseNet with configurable dense-block sizes."""

    def __init__(
        self,
        block_layers: tuple[int, ...] = (2, 2, 2),
        growth_rate: int = 4,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 8,
        compression: float = 0.5,
        conv_factory: ConvFactory = default_conv_factory,
    ) -> None:
        super().__init__()
        channels = 2 * growth_rate
        self.stem = conv_factory(ConvSlot("stem", in_channels, channels, image_size, 3, 1))
        spatial = image_size
        self.blocks: list[Module] = []
        for block_index, layers in enumerate(block_layers):
            for layer_index in range(layers):
                self.blocks.append(
                    DenseLayer(
                        f"dense{block_index}.layer{layer_index}",
                        channels,
                        growth_rate,
                        spatial,
                        conv_factory,
                    )
                )
                channels += growth_rate
            if block_index != len(block_layers) - 1:
                out_channels = max(int(channels * compression), growth_rate)
                self.blocks.append(Transition(channels, out_channels))
                channels = out_channels
                spatial //= 2
        self.final_bn = BatchNorm2d(channels)
        self.relu = ReLU()
        self.pool = AdaptiveAvgPool2d()
        self.head = Linear(channels, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        out = self.pool(self.relu(self.final_bn(out)))
        out = F.reshape(out, (out.shape[0], out.shape[1]))
        return self.head(out)


def densenet121(conv_factory: ConvFactory = default_conv_factory, num_classes: int = 10,
                image_size: int = 8) -> DenseNet:
    """DenseNet-121's dense/transition layout scaled down to three blocks."""
    return DenseNet(
        block_layers=(2, 3, 2),
        growth_rate=4,
        num_classes=num_classes,
        image_size=image_size,
        conv_factory=conv_factory,
    )
