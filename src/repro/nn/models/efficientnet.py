"""Tiny EfficientNetV2-S (Tan & Le, ICML 2021) on the numpy substrate.

EfficientNetV2 is the paper's "NAS-optimized" backbone: its early stages use
fused MBConv blocks (a full 3x3 convolution) and later stages use MBConv
blocks with depthwise 3x3 convolutions and squeeze-and-excitation.  The fused
3x3 convolutions are the substitutable slots (depthwise convolutions are
grouped and therefore already cheap, mirroring why the paper sees smaller
gains on this model).
"""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.layers import AdaptiveAvgPool2d, BatchNorm2d, Conv2d, Linear, ReLU
from repro.nn.models.common import ConvFactory, ConvSlot, default_conv_factory
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class SqueezeExcite(Module):
    """Channel attention: global pool -> reduce -> expand -> sigmoid gate."""

    def __init__(self, channels: int, reduction: int = 4) -> None:
        super().__init__()
        hidden = max(channels // reduction, 1)
        self.pool = AdaptiveAvgPool2d()
        self.reduce = Conv2d(channels, hidden, kernel_size=1, padding=0, bias=True)
        self.expand = Conv2d(hidden, channels, kernel_size=1, padding=0, bias=True)
        self.relu = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        gate = self.pool(x)
        gate = self.relu(self.reduce(gate))
        gate = F.sigmoid(self.expand(gate))
        return F.mul(x, gate)


class FusedMBConv(Module):
    """Expansion 3x3 convolution + projection (EfficientNetV2's early blocks)."""

    def __init__(self, name: str, in_channels: int, out_channels: int, expansion: int,
                 spatial: int, stride: int, conv_factory: ConvFactory) -> None:
        super().__init__()
        hidden = in_channels * expansion
        self.conv = conv_factory(ConvSlot(f"{name}.fused", in_channels, hidden, spatial, 3, stride))
        self.bn1 = BatchNorm2d(hidden)
        self.project = Conv2d(hidden, out_channels, kernel_size=1, padding=0)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.use_residual = stride == 1 and in_channels == out_channels

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv(x)))
        out = self.bn2(self.project(out))
        if self.use_residual:
            out = F.add(out, x)
        return out


class MBConv(Module):
    """1x1 expand -> depthwise 3x3 -> SE -> 1x1 project (later blocks)."""

    def __init__(self, name: str, in_channels: int, out_channels: int, expansion: int,
                 spatial: int, stride: int, conv_factory: ConvFactory) -> None:
        super().__init__()
        hidden = in_channels * expansion
        self.expand = Conv2d(in_channels, hidden, kernel_size=1, padding=0)
        self.bn1 = BatchNorm2d(hidden)
        # Depthwise convolution: groups == channels.  Recorded as a slot so the
        # FLOPs accounting sees it, but it is not a standard-conv substitution
        # target (the factory can skip grouped slots).
        self.depthwise = conv_factory(
            ConvSlot(f"{name}.dw", hidden, hidden, spatial, 3, stride, groups=hidden)
        )
        self.bn2 = BatchNorm2d(hidden)
        self.se = SqueezeExcite(hidden)
        self.project = Conv2d(hidden, out_channels, kernel_size=1, padding=0)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.use_residual = stride == 1 and in_channels == out_channels

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.expand(x)))
        out = self.relu(self.bn2(self.depthwise(out)))
        out = self.se(out)
        out = self.bn3(self.project(out))
        if self.use_residual:
            out = F.add(out, x)
        return out


class EfficientNetV2(Module):
    """A scaled-down EfficientNetV2: fused blocks then MBConv blocks."""

    def __init__(
        self,
        fused_blocks: int = 2,
        mbconv_blocks: int = 2,
        widths: tuple[int, int, int] = (8, 16, 24),
        expansion: int = 2,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 8,
        conv_factory: ConvFactory = default_conv_factory,
    ) -> None:
        super().__init__()
        self.stem = conv_factory(ConvSlot("stem", in_channels, widths[0], image_size, 3, 1))
        self.stem_bn = BatchNorm2d(widths[0])
        self.relu = ReLU()
        self.blocks: list[Module] = []
        channels = widths[0]
        spatial = image_size
        for index in range(fused_blocks):
            stride = 2 if index == 0 else 1
            self.blocks.append(
                FusedMBConv(f"fused{index}", channels, widths[1], expansion, spatial, stride,
                            conv_factory)
            )
            channels = widths[1]
            spatial //= stride
        for index in range(mbconv_blocks):
            stride = 2 if index == 0 and spatial > 2 else 1
            self.blocks.append(
                MBConv(f"mbconv{index}", channels, widths[2], expansion, spatial, stride,
                       conv_factory)
            )
            channels = widths[2]
            spatial //= stride
        self.pool = AdaptiveAvgPool2d()
        self.head = Linear(channels, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.stem_bn(self.stem(x)))
        for block in self.blocks:
            out = block(out)
        out = self.pool(out)
        out = F.reshape(out, (out.shape[0], out.shape[1]))
        return self.head(out)


def efficientnet_v2_s(conv_factory: ConvFactory = default_conv_factory, num_classes: int = 10,
                      image_size: int = 8) -> EfficientNetV2:
    """EfficientNetV2-S scaled down: two fused and two MBConv stages."""
    return EfficientNetV2(
        fused_blocks=2,
        mbconv_blocks=2,
        num_classes=num_classes,
        image_size=image_size,
        conv_factory=conv_factory,
    )
