"""A tiny GPT-2 (Radford et al., 2019) on the numpy substrate.

The model follows the GPT-2 architecture (token + position embeddings,
pre-norm transformer blocks with causal self-attention and a GELU MLP, weight
tying on the LM head) at a vastly reduced size.  The QKV projections are built
through a ``projection_factory`` so that the search can substitute synthesized
operators for them, which is exactly the substitution the paper performs for
its GPT-2 experiment (Section 9.3).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Embedding, GELU, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor

#: A projection factory maps (name, in_features, out_features) to a module.
ProjectionFactory = Callable[[str, int, int], Module]


def default_projection_factory(name: str, in_features: int, out_features: int) -> Module:
    return Linear(in_features, out_features)


class CausalSelfAttention(Module):
    """Multi-head causal self-attention with substitutable QKV projections."""

    def __init__(self, name: str, embed_dim: int, num_heads: int,
                 projection_factory: ProjectionFactory) -> None:
        super().__init__()
        if embed_dim % num_heads:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = projection_factory(f"{name}.q", embed_dim, embed_dim)
        self.k_proj = projection_factory(f"{name}.k", embed_dim, embed_dim)
        self.v_proj = projection_factory(f"{name}.v", embed_dim, embed_dim)
        self.out_proj = Linear(embed_dim, embed_dim)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        x = F.reshape(x, (batch, seq, self.num_heads, self.head_dim))
        return F.transpose(x, (0, 2, 1, 3))  # [B, heads, T, head_dim]

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))
        scores = F.einsum("bhtd,bhsd->bhts", q, k)
        scores = F.mul(scores, 1.0 / np.sqrt(self.head_dim))
        mask = np.triu(np.full((seq, seq), -1e9), k=1)
        scores = F.add(scores, Tensor(mask.reshape(1, 1, seq, seq)))
        attention = F.softmax(scores, axis=-1)
        context = F.einsum("bhts,bhsd->bhtd", attention, v)
        context = F.transpose(context, (0, 2, 1, 3))
        context = F.reshape(context, (batch, seq, self.embed_dim))
        return self.out_proj(context)


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + GELU MLP."""

    def __init__(self, name: str, embed_dim: int, num_heads: int, mlp_ratio: int,
                 projection_factory: ProjectionFactory) -> None:
        super().__init__()
        self.norm1 = LayerNorm(embed_dim)
        self.attention = CausalSelfAttention(name, embed_dim, num_heads, projection_factory)
        self.norm2 = LayerNorm(embed_dim)
        self.mlp_in = Linear(embed_dim, embed_dim * mlp_ratio)
        self.gelu = GELU()
        self.mlp_out = Linear(embed_dim * mlp_ratio, embed_dim)

    def forward(self, x: Tensor) -> Tensor:
        x = F.add(x, self.attention(self.norm1(x)))
        hidden = self.mlp_out(self.gelu(self.mlp_in(self.norm2(x))))
        return F.add(x, hidden)


class GPT2(Module):
    """A decoder-only transformer language model."""

    def __init__(
        self,
        vocab_size: int = 64,
        max_seq_len: int = 16,
        embed_dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        mlp_ratio: int = 2,
        dropout: float = 0.0,
        projection_factory: ProjectionFactory = default_projection_factory,
    ) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.token_embedding = Embedding(vocab_size, embed_dim)
        self.position_embedding = Embedding(max_seq_len, embed_dim)
        self.dropout = Dropout(dropout)
        self.blocks = [
            TransformerBlock(f"block{i}", embed_dim, num_heads, mlp_ratio, projection_factory)
            for i in range(num_layers)
        ]
        self.final_norm = LayerNorm(embed_dim)
        self.lm_head = Linear(embed_dim, vocab_size, bias=False)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        _, seq = tokens.shape
        positions = np.arange(seq)
        x = F.add(self.token_embedding(tokens), self.position_embedding(positions))
        x = self.dropout(x)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.lm_head(x)

    def projection_slots(self) -> list[tuple[str, int, int]]:
        """The QKV projection slots (name, in_features, out_features)."""
        slots = []
        for index, _ in enumerate(self.blocks):
            for which in ("q", "k", "v"):
                slots.append((f"block{index}.{which}", self.embed_dim, self.embed_dim))
        return slots


def gpt2_tiny(projection_factory: ProjectionFactory = default_projection_factory,
              vocab_size: int = 64, max_seq_len: int = 16) -> GPT2:
    """The GPT-2 architecture at toy scale (2 layers, 4 heads, 32 dims)."""
    return GPT2(
        vocab_size=vocab_size,
        max_seq_len=max_seq_len,
        embed_dim=32,
        num_heads=4,
        num_layers=2,
        projection_factory=projection_factory,
    )
