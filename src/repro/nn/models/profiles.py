"""ImageNet-scale layer profiles of the five vision backbones.

Accuracy evaluation runs on tiny model instances (so they can be trained on a
CPU), but latency evaluation — like the paper's — is about the *real* layer
shapes.  This module lists the 3x3 convolution slots of the actual
ImageNet-resolution models; the compiler backends cost these shapes when
regenerating Figures 5, 6, 8 and 9.

Layer shapes follow the original papers (input resolution 224, stem
downsampling to 56x56 for the ResNet family).  DenseNet-121 and
EfficientNetV2-S have many structurally identical layers; they are listed
once with a ``count`` multiplier to keep the tables readable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.models.common import ConvSlot


@dataclass(frozen=True)
class ProfiledSlot:
    """A conv slot plus how many times it repeats in the real model."""

    slot: ConvSlot
    count: int = 1


def _expand(profile: list[ProfiledSlot]) -> list[ConvSlot]:
    slots: list[ConvSlot] = []
    for entry in profile:
        for index in range(entry.count):
            slots.append(
                ConvSlot(
                    name=f"{entry.slot.name}" if entry.count == 1 else f"{entry.slot.name}.{index}",
                    in_channels=entry.slot.in_channels,
                    out_channels=entry.slot.out_channels,
                    spatial=entry.slot.spatial,
                    kernel_size=entry.slot.kernel_size,
                    stride=entry.slot.stride,
                    groups=entry.slot.groups,
                )
            )
    return slots


# -- ResNet-18 / ResNet-34 (He et al. 2016, ImageNet configuration) -----------

RESNET18_PROFILE = _expand([
    ProfiledSlot(ConvSlot("layer1.conv", 64, 64, 56, 3, 1), count=4),
    ProfiledSlot(ConvSlot("layer2.down", 64, 128, 56, 3, 2), count=1),
    ProfiledSlot(ConvSlot("layer2.conv", 128, 128, 28, 3, 1), count=3),
    ProfiledSlot(ConvSlot("layer3.down", 128, 256, 28, 3, 2), count=1),
    ProfiledSlot(ConvSlot("layer3.conv", 256, 256, 14, 3, 1), count=3),
    ProfiledSlot(ConvSlot("layer4.down", 256, 512, 14, 3, 2), count=1),
    ProfiledSlot(ConvSlot("layer4.conv", 512, 512, 7, 3, 1), count=3),
])

RESNET34_PROFILE = _expand([
    ProfiledSlot(ConvSlot("layer1.conv", 64, 64, 56, 3, 1), count=6),
    ProfiledSlot(ConvSlot("layer2.down", 64, 128, 56, 3, 2), count=1),
    ProfiledSlot(ConvSlot("layer2.conv", 128, 128, 28, 3, 1), count=7),
    ProfiledSlot(ConvSlot("layer3.down", 128, 256, 28, 3, 2), count=1),
    ProfiledSlot(ConvSlot("layer3.conv", 256, 256, 14, 3, 1), count=11),
    ProfiledSlot(ConvSlot("layer4.down", 256, 512, 14, 3, 2), count=1),
    ProfiledSlot(ConvSlot("layer4.conv", 512, 512, 7, 3, 1), count=5),
])

#: The ten ResNet-34 layers Figure 9 reports (L1, L7, L8, L9, L16, L17, L18,
#: L29, L30, L31 in the paper's numbering of the 3x3 convolutions).
RESNET34_FIGURE9_LAYERS: dict[str, ConvSlot] = {
    "L1": ConvSlot("L1", 64, 64, 56, 3, 1),
    "L7": ConvSlot("L7", 64, 128, 56, 3, 2),
    "L8": ConvSlot("L8", 128, 128, 28, 3, 1),
    "L9": ConvSlot("L9", 128, 128, 28, 3, 1),
    "L16": ConvSlot("L16", 128, 256, 28, 3, 2),
    "L17": ConvSlot("L17", 256, 256, 14, 3, 1),
    "L18": ConvSlot("L18", 256, 256, 14, 3, 1),
    "L29": ConvSlot("L29", 256, 512, 14, 3, 2),
    "L30": ConvSlot("L30", 512, 512, 7, 3, 1),
    "L31": ConvSlot("L31", 512, 512, 7, 3, 1),
}

# -- DenseNet-121 (growth rate 32): each dense layer is a 1x1 bottleneck conv
# -- (to 4*growth channels) followed by a 3x3 conv; only the 3x3 is a
# -- substitution target, the 1x1s dilute the achievable end-to-end speedup.

DENSENET121_PROFILE = _expand([
    ProfiledSlot(ConvSlot("dense1.bottleneck", 96, 128, 56, 1, 1), count=6),
    ProfiledSlot(ConvSlot("dense1.conv", 128, 32, 56, 3, 1), count=6),
    ProfiledSlot(ConvSlot("dense2.bottleneck", 256, 128, 28, 1, 1), count=12),
    ProfiledSlot(ConvSlot("dense2.conv", 128, 32, 28, 3, 1), count=12),
    ProfiledSlot(ConvSlot("dense3.bottleneck", 512, 128, 14, 1, 1), count=24),
    ProfiledSlot(ConvSlot("dense3.conv", 128, 32, 14, 3, 1), count=24),
    ProfiledSlot(ConvSlot("dense4.bottleneck", 768, 128, 7, 1, 1), count=16),
    ProfiledSlot(ConvSlot("dense4.conv", 128, 32, 7, 3, 1), count=16),
])

# -- ResNeXt-29 (2x64d): 1x1 reduce, grouped 3x3, 1x1 expand per block --------

RESNEXT29_PROFILE = _expand([
    ProfiledSlot(ConvSlot("stage1.reduce", 64, 128, 56, 1, 1), count=3),
    ProfiledSlot(ConvSlot("stage1.grouped", 128, 128, 56, 3, 1, groups=2), count=3),
    ProfiledSlot(ConvSlot("stage1.expand", 128, 256, 56, 1, 1), count=3),
    ProfiledSlot(ConvSlot("stage2.reduce", 256, 256, 28, 1, 1), count=3),
    ProfiledSlot(ConvSlot("stage2.grouped", 256, 256, 28, 3, 1, groups=2), count=3),
    ProfiledSlot(ConvSlot("stage2.expand", 256, 512, 28, 1, 1), count=3),
    ProfiledSlot(ConvSlot("stage3.reduce", 512, 512, 14, 1, 1), count=3),
    ProfiledSlot(ConvSlot("stage3.grouped", 512, 512, 14, 3, 1, groups=2), count=3),
    ProfiledSlot(ConvSlot("stage3.expand", 512, 1024, 14, 1, 1), count=3),
])

# -- EfficientNetV2-S: fused-MBConv 3x3 convolutions plus the 1x1 projections
# -- and depthwise convolutions of the later MBConv stages --------------------

EFFICIENTNETV2S_PROFILE = _expand([
    ProfiledSlot(ConvSlot("fused1.conv", 24, 24, 112, 3, 1), count=2),
    ProfiledSlot(ConvSlot("fused2.conv", 24, 96, 112, 3, 2), count=1),
    ProfiledSlot(ConvSlot("fused2.conv_b", 48, 192, 56, 3, 1), count=3),
    ProfiledSlot(ConvSlot("fused3.conv", 64, 256, 56, 3, 2), count=1),
    ProfiledSlot(ConvSlot("fused3.conv_b", 64, 256, 28, 3, 1), count=3),
    ProfiledSlot(ConvSlot("fused.project", 256, 64, 28, 1, 1), count=4),
    ProfiledSlot(ConvSlot("mbconv.expand", 128, 512, 14, 1, 1), count=9),
    ProfiledSlot(ConvSlot("mbconv.dw", 512, 512, 14, 3, 1, groups=512), count=9),
    ProfiledSlot(ConvSlot("mbconv.project", 512, 128, 14, 1, 1), count=9),
    ProfiledSlot(ConvSlot("mbconv2.expand", 160, 960, 7, 1, 1), count=15),
    ProfiledSlot(ConvSlot("mbconv2.dw", 960, 960, 7, 3, 1, groups=960), count=15),
    ProfiledSlot(ConvSlot("mbconv2.project", 960, 160, 7, 1, 1), count=15),
])

MODEL_PROFILES: dict[str, list[ConvSlot]] = {
    "resnet18": RESNET18_PROFILE,
    "resnet34": RESNET34_PROFILE,
    "densenet121": DENSENET121_PROFILE,
    "resnext29_2x64d": RESNEXT29_PROFILE,
    "efficientnet_v2_s": EFFICIENTNETV2S_PROFILE,
}


def profile_for(model_name: str) -> list[ConvSlot]:
    if model_name not in MODEL_PROFILES:
        raise KeyError(f"no ImageNet-scale profile for model {model_name!r}")
    return MODEL_PROFILES[model_name]
