"""Tiny configurations of the paper's six backbone models.

Each vision model takes a ``conv_factory`` callable so that the search can
substitute synthesized operators for the standard convolutions (the paper
substitutes *all* standard convolutions); GPT-2 takes a ``projection_factory``
for its QKV projections.  The default factories build the standard layers.
"""

from repro.nn.models.common import ConvSlot, default_conv_factory, RecordingFactory
from repro.nn.models.resnet import ResNet, resnet18, resnet34
from repro.nn.models.densenet import DenseNet, densenet121
from repro.nn.models.resnext import ResNeXt, resnext29
from repro.nn.models.efficientnet import EfficientNetV2, efficientnet_v2_s
from repro.nn.models.gpt2 import GPT2, gpt2_tiny

MODEL_BUILDERS = {
    "resnet18": resnet18,
    "resnet34": resnet34,
    "densenet121": densenet121,
    "resnext29_2x64d": resnext29,
    "efficientnet_v2_s": efficientnet_v2_s,
    "gpt2": gpt2_tiny,
}

__all__ = [
    "ConvSlot",
    "RecordingFactory",
    "default_conv_factory",
    "ResNet",
    "resnet18",
    "resnet34",
    "DenseNet",
    "densenet121",
    "ResNeXt",
    "resnext29",
    "EfficientNetV2",
    "efficientnet_v2_s",
    "GPT2",
    "gpt2_tiny",
    "MODEL_BUILDERS",
]
