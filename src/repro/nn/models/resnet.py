"""Tiny ResNet-18 / ResNet-34 (He et al., CVPR 2016) on the numpy substrate.

The block structure (two 3x3 convolutions per basic block, identity or
1x1-projection shortcuts, stage doubling of channels with stride-2
downsampling) matches the original; widths and input resolution are scaled
down so the model trains in seconds on a CPU.  The residual links live in the
block, outside the substitutable operators, exactly as the paper requires
(Section 5.4: Syno operators are single-input, residuals stay in the model).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import AdaptiveAvgPool2d, BatchNorm2d, Conv2d, Linear, ReLU
from repro.nn.models.common import ConvFactory, ConvSlot, default_conv_factory
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual connection."""

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        spatial: int,
        stride: int,
        conv_factory: ConvFactory,
    ) -> None:
        super().__init__()
        self.conv1 = conv_factory(
            ConvSlot(f"{name}.conv1", in_channels, out_channels, spatial, 3, stride)
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = conv_factory(
            ConvSlot(f"{name}.conv2", out_channels, out_channels, spatial // stride, 3, 1)
        )
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            # 1x1 projection shortcuts are not substituted (not 3x3 slots).
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, kernel_size=1, stride=stride, padding=0),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x if self.shortcut is None else self.shortcut(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(F.add(out, identity))


class ResNet(Module):
    """A scaled-down ResNet with configurable blocks per stage."""

    def __init__(
        self,
        blocks_per_stage: tuple[int, ...] = (2, 2, 2),
        widths: tuple[int, ...] = (8, 16, 32),
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 8,
        conv_factory: ConvFactory = default_conv_factory,
    ) -> None:
        super().__init__()
        if len(blocks_per_stage) != len(widths):
            raise ValueError("blocks_per_stage and widths must have the same length")
        self.image_size = image_size
        self.stem = conv_factory(ConvSlot("stem", in_channels, widths[0], image_size, 3, 1))
        self.stem_bn = BatchNorm2d(widths[0])
        self.relu = ReLU()

        stages = []
        channels = widths[0]
        spatial = image_size
        for stage_index, (blocks, width) in enumerate(zip(blocks_per_stage, widths)):
            for block_index in range(blocks):
                stride = 2 if stage_index > 0 and block_index == 0 else 1
                stages.append(
                    BasicBlock(
                        f"stage{stage_index}.block{block_index}",
                        channels,
                        width,
                        spatial,
                        stride,
                        conv_factory,
                    )
                )
                channels = width
                spatial //= stride
        self.stages = stages
        self.pool = AdaptiveAvgPool2d()
        self.head = Linear(channels, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.stem_bn(self.stem(x)))
        for block in self.stages:
            out = block(out)
        out = self.pool(out)
        out = F.reshape(out, (out.shape[0], out.shape[1]))
        return self.head(out)


def resnet18(conv_factory: ConvFactory = default_conv_factory, num_classes: int = 10,
             image_size: int = 8) -> ResNet:
    """The ResNet-18 block layout ([2, 2, 2, 2]) at reduced width/resolution."""
    return ResNet(
        blocks_per_stage=(2, 2, 2),
        widths=(8, 16, 32),
        num_classes=num_classes,
        image_size=image_size,
        conv_factory=conv_factory,
    )


def resnet34(conv_factory: ConvFactory = default_conv_factory, num_classes: int = 10,
             image_size: int = 8) -> ResNet:
    """The ResNet-34 layout ([3, 4, 6, 3]) scaled down to three stages."""
    return ResNet(
        blocks_per_stage=(3, 4, 3),
        widths=(8, 16, 32),
        num_classes=num_classes,
        image_size=image_size,
        conv_factory=conv_factory,
    )
