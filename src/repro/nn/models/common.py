"""Shared infrastructure for substitutable convolution slots.

A *conv slot* is one place in a backbone model where a standard convolution
(or any drop-in operator with the same input/output shapes) is instantiated.
Models call a ``conv_factory`` for every slot; the default factory builds the
standard :class:`~repro.nn.layers.Conv2d`, a :class:`RecordingFactory` records
the slots (used to derive per-layer bindings for synthesis), and the search
provides a factory that instantiates synthesized operators instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.nn.layers import Conv2d
from repro.nn.module import Module


@dataclass(frozen=True)
class ConvSlot:
    """Description of one convolution slot in a backbone model."""

    name: str
    in_channels: int
    out_channels: int
    spatial: int            #: input feature-map height/width at this slot
    kernel_size: int = 3
    stride: int = 1
    groups: int = 1

    @property
    def output_spatial(self) -> int:
        return self.spatial // self.stride

    def macs(self, batch: int = 1) -> int:
        """Multiply-accumulates of the standard convolution in this slot."""
        return (
            batch
            * self.out_channels
            * self.output_spatial
            * self.output_spatial
            * (self.in_channels // self.groups)
            * self.kernel_size
            * self.kernel_size
        )

    def parameters(self) -> int:
        return self.out_channels * (self.in_channels // self.groups) * self.kernel_size**2


#: A conv factory maps a slot description to a module implementing it.
ConvFactory = Callable[[ConvSlot], Module]


def default_conv_factory(slot: ConvSlot) -> Module:
    """The standard convolution for a slot (the paper's baseline operator)."""
    return Conv2d(
        slot.in_channels,
        slot.out_channels,
        kernel_size=slot.kernel_size,
        stride=slot.stride,
        groups=slot.groups,
    )


@dataclass
class RecordingFactory:
    """A conv factory that records every slot while delegating construction.

    Used to extract the operator specification (and its per-layer concrete
    bindings) from a backbone model, which is the ``ExtractOperators`` step of
    Algorithm 1.
    """

    delegate: ConvFactory = default_conv_factory
    slots: list[ConvSlot] = field(default_factory=list)

    def __call__(self, slot: ConvSlot) -> Module:
        self.slots.append(slot)
        return self.delegate(slot)

    def substitutable(self, kernel_size: int = 3, groups: int = 1) -> list[ConvSlot]:
        """Slots eligible for substitution (standard, non-grouped convolutions)."""
        return [
            slot
            for slot in self.slots
            if slot.kernel_size == kernel_size and slot.groups == groups
        ]
