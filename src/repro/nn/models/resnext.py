"""Tiny ResNeXt-29 (Xie et al., CVPR 2017) on the numpy substrate.

ResNeXt blocks use grouped 3x3 convolutions ("cardinality"); the paper's
ResNeXt-29-2x64d uses cardinality 2.  The grouped 3x3 convolution is the
substitutable slot (the search is given the grouped shape to beat).
"""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.layers import AdaptiveAvgPool2d, BatchNorm2d, Conv2d, Linear, ReLU
from repro.nn.models.common import ConvFactory, ConvSlot, default_conv_factory
from repro.nn.module import Module, Sequential
from repro.nn.tensor import Tensor


class ResNeXtBlock(Module):
    """1x1 reduce -> grouped 3x3 -> 1x1 expand, with a residual connection."""

    def __init__(
        self,
        name: str,
        in_channels: int,
        bottleneck: int,
        out_channels: int,
        cardinality: int,
        spatial: int,
        stride: int,
        conv_factory: ConvFactory,
    ) -> None:
        super().__init__()
        self.reduce = Conv2d(in_channels, bottleneck, kernel_size=1, padding=0)
        self.bn1 = BatchNorm2d(bottleneck)
        self.conv = conv_factory(
            ConvSlot(f"{name}.grouped", bottleneck, bottleneck, spatial, 3, stride, cardinality)
        )
        self.bn2 = BatchNorm2d(bottleneck)
        self.expand = Conv2d(bottleneck, out_channels, kernel_size=1, padding=0)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, kernel_size=1, stride=stride, padding=0),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x if self.shortcut is None else self.shortcut(x)
        out = self.relu(self.bn1(self.reduce(x)))
        out = self.relu(self.bn2(self.conv(out)))
        out = self.bn3(self.expand(out))
        return self.relu(F.add(out, identity))


class ResNeXt(Module):
    """A scaled-down ResNeXt with three stages of aggregated blocks."""

    def __init__(
        self,
        blocks_per_stage: tuple[int, ...] = (1, 1, 1),
        widths: tuple[int, ...] = (8, 16, 32),
        cardinality: int = 2,
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 8,
        conv_factory: ConvFactory = default_conv_factory,
    ) -> None:
        super().__init__()
        self.stem = conv_factory(ConvSlot("stem", in_channels, widths[0], image_size, 3, 1))
        self.stem_bn = BatchNorm2d(widths[0])
        self.relu = ReLU()
        self.blocks: list[Module] = []
        channels = widths[0]
        spatial = image_size
        for stage_index, (blocks, width) in enumerate(zip(blocks_per_stage, widths)):
            for block_index in range(blocks):
                stride = 2 if stage_index > 0 and block_index == 0 else 1
                self.blocks.append(
                    ResNeXtBlock(
                        f"stage{stage_index}.block{block_index}",
                        channels,
                        width,
                        width,
                        cardinality,
                        spatial,
                        stride,
                        conv_factory,
                    )
                )
                channels = width
                spatial //= stride
        self.pool = AdaptiveAvgPool2d()
        self.head = Linear(channels, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.stem_bn(self.stem(x)))
        for block in self.blocks:
            out = block(out)
        out = self.pool(out)
        out = F.reshape(out, (out.shape[0], out.shape[1]))
        return self.head(out)


def resnext29(conv_factory: ConvFactory = default_conv_factory, num_classes: int = 10,
              image_size: int = 8) -> ResNeXt:
    """ResNeXt-29 (2x64d) scaled down: cardinality 2, three stages."""
    return ResNeXt(
        blocks_per_stage=(1, 1, 1),
        widths=(8, 16, 32),
        cardinality=2,
        num_classes=num_classes,
        image_size=image_size,
        conv_factory=conv_factory,
    )
