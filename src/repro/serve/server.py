"""The ``repro serve`` daemon: many clients, one warm context, shared waves.

:class:`SearchServer` is an asyncio JSON-lines server (TCP or unix socket —
see :mod:`repro.serve.protocol` for the wire format).  Each ``run`` request
gets its *own* derived :class:`~repro.runtime.RuntimeContext` — the
request's seed/budget/dtype overrides frozen over the server's warm cache
set — and executes on a worker thread through the same
:func:`~repro.experiments.runner.run_experiment` path the CLI uses, so the
stored record and its fingerprint are bit-identical to a serial ``repro
run`` of the same request.  What *is* different under load: every request
context carries the server's :class:`~repro.serve.coalescer.WaveCoalescer`
as its ``wave_evaluator``, so concurrent searches' MCTS frontier waves merge
into shared ``sharded_map`` fan-outs and N clients amortize proxy trainings.

Threading model: the asyncio loop owns sockets and event streaming; each
request's search runs in ``asyncio.to_thread``; wave-progress callbacks hop
back into the loop with ``call_soon_threadsafe``.  The coalescer
synchronizes the worker threads directly — the loop never blocks on a wave.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from typing import Callable

from repro.experiments.runner import CONTEXT_STORE, experiment_names, run_experiment
from repro.runtime import RuntimeContext, current
from repro.serve import protocol
from repro.serve.coalescer import WaveCoalescer, WaveStats

log = logging.getLogger(__name__)


class SearchServer:
    """Coalescing search service over one warm runtime context."""

    def __init__(
        self,
        runtime: RuntimeContext | None = None,
        window_seconds: float = 0.05,
    ) -> None:
        #: the root context every request derives from; its caches are the
        #: shared substrate and its store is where records land.
        self.runtime = runtime if runtime is not None else current()
        self.coalescer = WaveCoalescer(self.runtime, window_seconds=window_seconds)
        self.address: str | None = None
        self.port: int | None = None
        self._requests_accepted = 0
        self._requests_completed = 0
        self._requests_failed = 0
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._inflight: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
    ) -> str:
        """Bind and start accepting connections; returns the bound address."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=str(socket_path)
            )
            self.address = str(socket_path)
        else:
            self._server = await asyncio.start_server(self._handle_connection, host, port)
            bound = self._server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
            self.port = bound[1]
        log.info("serving on %s (%d experiment(s) registered)",
                 self.address, len(experiment_names()))
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown is requested, then drain in-flight work."""
        if self._server is None or self._stop is None:
            raise RuntimeError("server not started")
        await self._stop.wait()
        self._server.close()
        await self._server.wait_closed()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        log.info("drained; %d request(s) served", self._requests_completed)

    def request_shutdown(self) -> None:
        """Ask the server to stop; safe to call from any thread."""
        if self._loop is None or self._stop is None:
            return
        self._loop.call_soon_threadsafe(self._stop.set)

    # -- connections ---------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        send_lock = asyncio.Lock()

        async def send(message: dict) -> None:
            async with send_lock:
                writer.write(protocol.encode(message))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    payload = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    await send({"event": "error", "error": str(exc)})
                    continue
                op = payload.get("op")
                if op == "run":
                    await self._accept_run(payload, send)
                elif op == "status":
                    await send({"event": "status", **self.status()})
                elif op == "shutdown":
                    await send({"event": "shutdown", **self.status()})
                    self.request_shutdown()
                else:
                    await send({"event": "error", "error": f"unknown op {op!r}"})
        except (ConnectionResetError, BrokenPipeError) as exc:
            log.debug("client connection dropped: %s", exc)
        except asyncio.CancelledError:
            # Loop teardown cancels handlers still parked in readline; that
            # is the normal end of a connection's life, not an error.
            log.debug("connection handler cancelled at shutdown")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError) as exc:
                log.debug("close race on dropped client: %s", exc)
            except asyncio.CancelledError:
                # A handler cancelled in readline lands here with the
                # cancellation still pending; the transport is already
                # closed, so swallowing it keeps teardown quiet.
                log.debug("close cancelled at shutdown")

    async def _accept_run(self, payload: dict, send) -> None:
        try:
            request = protocol.RunRequest.from_payload(payload)
        except protocol.ProtocolError as exc:
            await send({"event": "error", "id": payload.get("id"), "error": str(exc)})
            return
        self._requests_accepted += 1
        await send({
            "event": "accepted",
            "id": request.request_id,
            "experiment": request.experiment,
        })
        task = asyncio.create_task(self._run_request(request, send))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    # -- request execution ---------------------------------------------------

    async def _run_request(self, request: protocol.RunRequest, send) -> None:
        loop = asyncio.get_running_loop()

        def notify(stats: WaveStats) -> None:
            # Called on a search worker thread at each wave boundary.
            event = {"event": "wave", "id": request.request_id, **stats.to_dict()}
            try:
                loop.call_soon_threadsafe(self._post_event, send, event)
            except RuntimeError as exc:
                # The loop closed under us (interrupt-driven shutdown while
                # this search drains): progress events are best-effort.
                log.debug("wave event dropped after loop shutdown: %s", exc)

        try:
            record = await asyncio.to_thread(self._execute, request, notify)
        except Exception as exc:
            self._requests_failed += 1
            log.warning("request %r failed", request.request_id or request.experiment,
                        exc_info=True)
            await self._send_quiet(send, {
                "event": "error",
                "id": request.request_id,
                "error": f"{type(exc).__name__}: {exc}",
            })
            return
        self._requests_completed += 1
        await self._send_quiet(send, {
            "event": "result",
            "id": request.request_id,
            "experiment": request.experiment,
            "run_id": record.run_id,
            "status": record.status,
            "fingerprint": record.fingerprint(),
            "duration_seconds": record.duration_seconds,
            "metrics": record.metrics,
            "cache_stats": record.cache_stats,
        })

    def _execute(self, request: protocol.RunRequest, notify: Callable) -> object:
        """Worker-thread body: derive, install the coalescer, run, store."""
        context = self.runtime.derive(**request.overrides)
        coalescer = self.coalescer

        def wave_evaluator(pending, reward_fn, cache_context, runtime):
            return coalescer.evaluate(
                pending, reward_fn, cache_context, runtime=runtime, on_wave=notify
            )

        context.wave_evaluator = wave_evaluator
        with context.activate(adopt=False):
            with coalescer.search_scope():
                outcome = run_experiment(
                    request.experiment, request.config, store=CONTEXT_STORE
                )
        return outcome.record

    def _post_event(self, send, event: dict) -> None:
        # Runs on the loop: turn the threaded callback into a tracked send.
        task = asyncio.ensure_future(self._send_quiet(send, event))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _send_quiet(self, send, event: dict) -> None:
        try:
            await send(event)
        except (ConnectionError, RuntimeError) as exc:
            log.debug("event %r dropped (client gone): %s", event.get("event"), exc)

    # -- reporting -----------------------------------------------------------

    def status(self) -> dict:
        """One status snapshot (the ``status`` / ``shutdown`` event body)."""
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "address": self.address,
            "experiments": experiment_names(),
            "requests": {
                "accepted": self._requests_accepted,
                "completed": self._requests_completed,
                "failed": self._requests_failed,
                "active": sum(1 for t in self._inflight if not t.done()),
            },
            #: per-request context accounting: how many contexts the root has
            #: derived (one per run request, plus any operator-side derives).
            "derived_contexts": self.runtime.derived_count,
            "coalescer": self.coalescer.stats(),
            "cache_sizes": self.runtime.caches.sizes(),
        }


def run_server(
    server: SearchServer,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: str | None = None,
    on_ready: Callable[[str], None] | None = None,
) -> None:
    """Blocking entry point: start ``server`` and run it to shutdown.

    Used by ``repro serve`` on the main thread and by ``repro bench serve``
    (and the tests) on a background thread — ``on_ready`` receives the bound
    address once connections are being accepted, which is how a harness
    learns the ephemeral port.
    """

    async def _main() -> None:
        address = await server.start(host=host, port=port, socket_path=socket_path)
        if on_ready is not None:
            on_ready(address)
        await server.serve_until_shutdown()

    asyncio.run(_main())


def start_server_thread(
    server: SearchServer,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: str | None = None,
) -> tuple[threading.Thread, str]:
    """Run ``server`` on a daemon thread; returns once it accepts connections.

    The bench harness and the tests drive a real server this way.  Stop it
    with ``server.request_shutdown()`` (or a client ``shutdown`` op) and join
    the returned thread.
    """
    ready = threading.Event()
    box: dict[str, str] = {}

    def _on_ready(address: str) -> None:
        box["address"] = address
        ready.set()

    thread = threading.Thread(
        target=run_server,
        kwargs={
            "server": server,
            "host": host,
            "port": port,
            "socket_path": socket_path,
            "on_ready": _on_ready,
        },
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("search server did not start within 30s")
    return thread, box["address"]
