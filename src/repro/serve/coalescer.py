"""Cross-request wave coalescing: N searches, one ``sharded_map`` fan-out.

Concurrent search requests each run their own MCTS loop, but their frontier
waves all need the same kind of work — proxy-train a candidate, cache the
reward — against the *same* shared :class:`~repro.runtime.caches.CacheSet`.
The :class:`WaveCoalescer` is the meeting point: every search submits its
wave's pending ``(signature, operator)`` pairs and blocks; one submitting
thread becomes the wave leader, merges every queued submission into a single
de-duplicated task list, runs it through one
:func:`repro.search.parallel.sharded_map` call, and distributes the rewards
back.  N clients searching overlapping spaces therefore amortize proxy
trainings three ways:

* **within a wave** — identical ``(cache context, signature)`` tasks from
  different searches collapse to one computation before the fan-out;
* **across waves** — tasks already present in the shared reward cache are
  satisfied without training (the pre-wave probe counts these as hits);
* **across the fleet** — one fan-out per wave instead of one per search
  keeps the shard workers full regardless of how many clients are connected.

A wave fires when every registered search has a submission queued (the
common steady state: all in-flight searches hit their wave boundary) or when
the oldest submission's coalescing window (``window_seconds``) expires —
whichever comes first, so a lone client never waits on company that is not
coming.

Determinism: wave *composition* happens inside each search before
submission (a pure function of its seed and frontier width), and every
reward is a pure function of its cache key — so how submissions interleave,
which searches share a wave, and where tasks are computed can change
wall-clock and cache traffic but never a result.  That is why a coalesced
serve-side run's fingerprint is bit-identical to a serial ``repro run``.
"""

from __future__ import annotations

import contextlib
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator, Mapping, Sequence

from repro.runtime import RuntimeContext, current
from repro.search.parallel import sharded_map

log = logging.getLogger(__name__)


def _coalesced_task(task: tuple) -> float:
    """Compute one coalesced reward under its request's configuration.

    Runs inside a shard worker (or in-process on the serial path).  The
    request's frozen config is re-rooted onto the *ambient* cache set — the
    forked worker's inherited copy, or the server's shared set on the serial
    path — so the evaluator resolves dtype and budget through the request's
    own config while the cached value lands under the shared keys either
    way.  The double caching (here and inside ``reward_fn``) mirrors the
    serial MCTS path exactly.
    """
    reward_fn, cache_context, config, signature, operator = task
    scoped = RuntimeContext(config, caches=current().caches)
    with scoped.activate(adopt=False):
        return scoped.cached_reward(
            cache_context, signature, lambda: float(reward_fn(operator))
        )


@dataclass
class WaveStats:
    """One coalesced wave, as reported to every participating request."""

    wave: int
    #: searches whose pending evaluations joined this wave.
    submissions: int
    #: total (signature, operator) evaluations submitted.
    pending: int
    #: unique (cache context, signature) tasks after de-duplication.
    tasks: int
    #: tasks already satisfied by the shared reward cache before the fan-out.
    cache_hits: int
    #: tasks that actually cost a proxy training this wave.
    computed: int
    #: supervised-executor failures recovered during the fan-out.
    shard_failures: int

    @property
    def coalesced(self) -> int:
        """Duplicate evaluations amortized *within* this wave."""
        return self.pending - self.tasks

    def to_dict(self) -> dict:
        return {
            "wave": self.wave,
            "submissions": self.submissions,
            "pending": self.pending,
            "tasks": self.tasks,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "shard_failures": self.shard_failures,
        }


@dataclass
class _Submission:
    """One search's pending wave, queued for the next coalesced fan-out."""

    pending: list
    reward_fn: Callable
    cache_context: Hashable
    config: object  # the request's frozen RuntimeConfig
    deadline: float
    on_wave: Callable[[WaveStats], None] | None = None
    done: bool = False
    rewards: dict = field(default_factory=dict)
    error: BaseException | None = None


class WaveCoalescer:
    """Batches concurrent searches' reward waves into shared fan-outs."""

    def __init__(
        self, runtime: RuntimeContext | None = None, window_seconds: float = 0.05
    ) -> None:
        #: the server's root context: its caches are the shared substrate and
        #: its ``shards`` knob sizes every coalesced fan-out.
        self._runtime = runtime if runtime is not None else current()
        #: how long a lone submission waits for company before its wave fires.
        self.window_seconds = max(window_seconds, 0.0)
        self._cond = threading.Condition()
        self._registered = 0
        self._queue: list[_Submission] = []
        self._leader_busy = False
        self._waves = 0
        self._total_submissions = 0
        self._total_pending = 0
        self._total_tasks = 0
        self._total_hits = 0
        self._total_computed = 0

    # -- registration --------------------------------------------------------

    @contextlib.contextmanager
    def search_scope(self) -> Iterator["WaveCoalescer"]:
        """Mark one search as in-flight for the duration of the block.

        The registration count is the coalescer's completeness signal: a
        wave fires early once every registered search has submitted, so the
        common steady state pays no window latency at all.  Exits notify
        waiters because a departing search may have been the one everyone
        was (bounded by the window) waiting for.
        """
        with self._cond:
            self._registered += 1
        try:
            yield self
        finally:
            with self._cond:
                self._registered -= 1
                self._cond.notify_all()

    # -- submission ----------------------------------------------------------

    def evaluate(
        self,
        pending: Sequence[tuple[str, object]],
        reward_fn: Callable,
        cache_context: Hashable,
        runtime: RuntimeContext,
        on_wave: Callable[[WaveStats], None] | None = None,
    ) -> Mapping[str, float]:
        """Submit one search's wave and block until its rewards are ready.

        Matches the :attr:`repro.runtime.RuntimeContext.wave_evaluator`
        signature (plus the optional ``on_wave`` progress callback the
        serving layer threads in).  The calling thread either waits for a
        leader to deliver its rewards or becomes the leader itself and runs
        the merged wave.
        """
        if not pending:
            return {}
        submission = _Submission(
            pending=list(pending),
            reward_fn=reward_fn,
            cache_context=cache_context,
            config=runtime.config,
            deadline=time.monotonic() + self.window_seconds,
            on_wave=on_wave,
        )
        batch: list[_Submission] | None = None
        with self._cond:
            self._queue.append(submission)
            self._cond.notify_all()
            while not submission.done:
                if not self._leader_busy and self._wave_due():
                    self._leader_busy = True
                    batch, self._queue = self._queue, []
                    break
                self._cond.wait(timeout=self._wait_step())
        if batch is not None:
            try:
                self._run_wave(batch)
            finally:
                with self._cond:
                    self._leader_busy = False
                    self._cond.notify_all()
        if submission.error is not None:
            raise submission.error
        return submission.rewards

    def _wave_due(self) -> bool:
        """Fire check (callers hold the condition): full house or window up."""
        if not self._queue:
            return False
        if len(self._queue) >= max(self._registered, 1):
            return True
        return min(s.deadline for s in self._queue) <= time.monotonic()

    def _wait_step(self) -> float:
        """How long a waiter may sleep before rechecking the fire condition."""
        if not self._queue:
            return 0.5
        horizon = min(s.deadline for s in self._queue) - time.monotonic()
        return max(min(horizon, 0.5), 0.01)

    # -- the wave ------------------------------------------------------------

    def _run_wave(self, batch: list[_Submission]) -> None:
        """Leader body: merge, de-duplicate, fan out once, distribute."""
        tasks: list[tuple] = []
        index: dict[tuple, int] = {}
        pending_total = 0
        for submission in batch:
            for signature, operator in submission.pending:
                pending_total += 1
                key = (submission.cache_context, signature)
                if key in index:
                    continue
                index[key] = len(tasks)
                tasks.append((
                    submission.reward_fn, submission.cache_context,
                    submission.config, signature, operator,
                ))
        # Probe before computing: a key already in the shared reward cache is
        # another request's (or an earlier wave's) amortized training.
        reward_cache = self._runtime.caches.reward
        hits = sum(1 for key in index if key in reward_cache)
        failures_before = len(self._runtime.shard_failures)
        try:
            values = sharded_map(_coalesced_task, tasks, runtime=self._runtime)
        except BaseException as exc:
            # A genuine reward failure poisons every search in the wave; each
            # waiter re-raises it from its own evaluate() call.
            with self._cond:
                for submission in batch:
                    submission.error = exc
                    submission.done = True
                self._cond.notify_all()
            raise
        by_key = {key: values[i] for key, i in index.items()}
        with self._cond:
            self._waves += 1
            stats = WaveStats(
                wave=self._waves,
                submissions=len(batch),
                pending=pending_total,
                tasks=len(tasks),
                cache_hits=hits,
                computed=len(tasks) - hits,
                shard_failures=len(self._runtime.shard_failures) - failures_before,
            )
            self._total_submissions += len(batch)
            self._total_pending += pending_total
            self._total_tasks += len(tasks)
            self._total_hits += hits
            self._total_computed += len(tasks) - hits
            for submission in batch:
                submission.rewards = {
                    signature: by_key[(submission.cache_context, signature)]
                    for signature, _ in submission.pending
                }
                submission.done = True
            self._cond.notify_all()
        log.info(
            "wave %d: %d submission(s), %d pending -> %d task(s), "
            "%d cache hit(s), %d computed",
            stats.wave, stats.submissions, stats.pending, stats.tasks,
            stats.cache_hits, stats.computed,
        )
        for submission in batch:
            if submission.on_wave is not None:
                submission.on_wave(stats)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """Lifetime coalescing totals (``repro serve`` status, bench report)."""
        with self._cond:
            return {
                "waves": self._waves,
                "registered": self._registered,
                "submissions": self._total_submissions,
                "pending": self._total_pending,
                "tasks": self._total_tasks,
                "coalesced": self._total_pending - self._total_tasks,
                "cache_hits": self._total_hits,
                "computed": self._total_computed,
            }
