"""Blocking client for the search service.

One :class:`ServeClient` wraps one connection and drives one request at a
time — the shape ``repro bench serve`` and the tests need (N clients = N
connections on N threads).  Events for the in-flight request stream through
the optional ``on_event`` callback; :meth:`ServeClient.run` returns the
final ``result`` event, whose ``fingerprint`` is the serve-side record
identity to compare against a serial ``repro run``.
"""

from __future__ import annotations

import socket
from typing import Callable, Mapping

from repro.experiments.runner import ExperimentConfig
from repro.serve import protocol


class ServeError(RuntimeError):
    """The server reported an error, or the connection died mid-request."""


class ServeClient:
    """One blocking JSON-lines connection to a :class:`SearchServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        socket_path: str | None = None,
        timeout: float = 600.0,
    ) -> None:
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(str(socket_path))
        elif port is not None:
            sock = socket.create_connection((host, port), timeout=timeout)
        else:
            raise ValueError("need a port or a socket_path to connect to")
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ------------------------------------------------------------

    def run(
        self,
        experiment: str,
        config: ExperimentConfig | None = None,
        overrides: Mapping | None = None,
        request_id: str = "",
        on_event: Callable[[dict], None] | None = None,
    ) -> dict:
        """Run one experiment on the server; returns the ``result`` event.

        Streams every intermediate event (``accepted``, ``wave``...) through
        ``on_event``; raises :class:`ServeError` if the server answers with
        an ``error`` event instead of a result.
        """
        request = protocol.RunRequest(
            experiment=experiment,
            config=config if config is not None else ExperimentConfig(),
            overrides=dict(overrides or {}),
            request_id=request_id,
        )
        self._send(request.to_payload())
        while True:
            event = self._read_event()
            if on_event is not None:
                on_event(event)
            kind = event.get("event")
            if kind == "result":
                return event
            if kind == "error":
                raise ServeError(event.get("error", "unknown server error"))

    def status(self) -> dict:
        self._send({"op": "status"})
        return self._read_event()

    def shutdown(self) -> dict:
        """Ask the server to stop; returns its final status snapshot."""
        self._send({"op": "shutdown"})
        return self._read_event()

    # -- wire ----------------------------------------------------------------

    def _send(self, message: Mapping) -> None:
        self._sock.sendall(protocol.encode(message))

    def _read_event(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ServeError("server closed the connection")
        try:
            return protocol.decode(line)
        except protocol.ProtocolError as exc:
            raise ServeError(f"unreadable server event: {exc}") from None
