"""Wire protocol of the search service: JSON lines over a stream socket.

Every message — request and event alike — is one JSON object per line,
UTF-8, newline-terminated.  A client sends requests (``{"op": ...}``) and
reads a stream of events (``{"event": ...}``) back:

======== =====================================================================
op       meaning
======== =====================================================================
run      run one registered experiment; streams ``accepted`` → ``wave``\\* →
         ``result`` (or ``error``) events tagged with the request ``id``
status   one ``status`` event: protocol version, request counts, coalescer
         totals, derived-context accounting, cache sizes
shutdown acknowledge with a final ``status``-shaped ``shutdown`` event, stop
         accepting connections, drain in-flight runs
======== =====================================================================

A ``run`` request carries the experiment name, an
:class:`~repro.experiments.runner.ExperimentConfig` payload (``config``) and
optional per-request runtime overrides (``overrides``) applied when the
server derives the request's context from its warm root.  Overrides are
allowlisted: anything that would redirect the server's storage or otherwise
reach outside the request (``results_dir``, ``cache_dir``, ...) is rejected
at the protocol edge, not deep in the runtime.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.experiments.runner import ExperimentConfig, experiment_names

PROTOCOL_VERSION = 1

#: RuntimeConfig fields a request may pin on its derived context.  Everything
#: else either belongs in the ExperimentConfig payload or is the server
#: operator's business (storage roots, persistence, fault injection).
REQUEST_OVERRIDE_FIELDS = (
    "seed",
    "smoke",
    "train_steps",
    "dtype",
    "shards",
    "frontier_width",
    "eval_processes",
)


class ProtocolError(ValueError):
    """A malformed or invalid message line."""


def encode(message: Mapping[str, Any]) -> bytes:
    """One message → one newline-terminated JSON line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """One received line → message dict, or :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message line")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    return payload


@dataclass
class RunRequest:
    """One validated ``run`` request."""

    experiment: str
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    overrides: dict = field(default_factory=dict)
    request_id: str = ""

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunRequest":
        experiment = payload.get("experiment")
        if experiment not in experiment_names():
            known = ", ".join(experiment_names())
            raise ProtocolError(
                f"unknown experiment {experiment!r}; expected one of: {known}"
            )
        raw_config = payload.get("config") or {}
        if not isinstance(raw_config, Mapping):
            raise ProtocolError("config must be a JSON object")
        unknown = sorted(set(raw_config) - set(ExperimentConfig().to_dict()))
        if unknown:
            raise ProtocolError(f"unknown config field(s): {', '.join(unknown)}")
        raw_overrides = payload.get("overrides") or {}
        if not isinstance(raw_overrides, Mapping):
            raise ProtocolError("overrides must be a JSON object")
        rejected = sorted(set(raw_overrides) - set(REQUEST_OVERRIDE_FIELDS))
        if rejected:
            allowed = ", ".join(REQUEST_OVERRIDE_FIELDS)
            raise ProtocolError(
                f"override field(s) not allowed over the wire: "
                f"{', '.join(rejected)} (allowed: {allowed})"
            )
        return cls(
            experiment=experiment,
            config=ExperimentConfig.from_dict(raw_config),
            overrides=dict(raw_overrides),
            request_id=str(payload.get("id", "")),
        )

    def to_payload(self) -> dict:
        """The wire form a client sends (inverse of :meth:`from_payload`)."""
        return {
            "op": "run",
            "id": self.request_id,
            "experiment": self.experiment,
            "config": self.config.to_dict(),
            "overrides": dict(self.overrides),
        }
