"""The serving layer: ``repro serve`` and its wave-coalescing machinery.

Four pieces, one per module:

* :mod:`repro.serve.protocol` — the JSON-lines wire format and request
  validation (allowlisted per-request runtime overrides);
* :mod:`repro.serve.coalescer` — :class:`WaveCoalescer`, which merges
  concurrent searches' MCTS frontier waves into shared ``sharded_map``
  fan-outs over the server's warm caches;
* :mod:`repro.serve.server` — :class:`SearchServer`, the asyncio daemon
  that derives a per-request :class:`~repro.runtime.RuntimeContext` and
  streams progress events back to each client;
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  per-connection client used by ``repro bench serve`` and the tests.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.coalescer import WaveCoalescer, WaveStats
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    REQUEST_OVERRIDE_FIELDS,
    RunRequest,
)
from repro.serve.server import SearchServer, run_server, start_server_thread

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REQUEST_OVERRIDE_FIELDS",
    "RunRequest",
    "SearchServer",
    "ServeClient",
    "ServeError",
    "WaveCoalescer",
    "WaveStats",
    "run_server",
    "start_server_thread",
]
