"""INT8 post-training quantization baseline (Figure 8).

The paper compares Operator 1 with the INT8-quantized ResNet-18 from
torchvision/QNNPACK imported into TVM.  Here quantization is simulated
faithfully on both axes of the trade-off:

* *accuracy*: the trained model's weights are rounded to 256 levels
  (symmetric per-tensor quantization) and validation accuracy is re-measured;
* *latency*: the cost model is re-run with 1-byte elements and the target's
  INT8 throughput multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.compiler.backends import loopnest_for_slot
from repro.compiler.costmodel import AnalyticalCostModel
from repro.compiler.schedule import Schedule, schedule_space
from repro.compiler.targets import HardwareTarget
from repro.nn.models.common import ConvSlot
from repro.nn.module import Module


@dataclass(frozen=True)
class QuantizationResult:
    """Accuracy and latency of the INT8 model."""

    accuracy: float
    latency_seconds: float

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1e3


def quantize_model(model: Module, bits: int = 8) -> Module:
    """Symmetric per-tensor weight quantization, in place (returns the model)."""
    levels = 2 ** (bits - 1) - 1
    for parameter in model.parameters():
        scale = np.abs(parameter.data).max() / levels
        if scale == 0:
            continue
        parameter.data = np.clip(np.round(parameter.data / scale), -levels, levels) * scale
    return model


def quantized_latency(
    slots: Sequence[ConvSlot],
    target: HardwareTarget,
    batch: int = 1,
    trials: int = 32,
) -> float:
    """Tuned end-to-end latency of the standard convolutions under INT8."""
    cost_model = AnalyticalCostModel(
        element_bytes=1, datatype_speedup=target.int8_speedup
    )
    total = 0.0
    for slot in slots:
        program = loopnest_for_slot(slot, batch=batch)
        best = float("inf")
        for index, schedule in enumerate(schedule_space()):
            if index >= trials:
                break
            best = min(best, cost_model.program_latency(program, target, schedule))
        total += best
    return total
