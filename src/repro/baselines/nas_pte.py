"""NAS-PTE baseline operators (Turner et al., ASPLOS 2021).

NAS-PTE extends a tensor compiler with a few *inequivalent* loop
transformations — grouping and bottlenecking a loop's range — and searches
over where to apply them.  The paper compares Syno's two case-study operators
against NAS-PTE's three published operator sequences layer by layer
(Figure 9).  Here the three sequences are expressed with Syno primitives so
that FLOPs, parameters and tuned latency all come from the same pipeline:

* **Seq 1** — grouped convolution (grouping the channel loops);
* **Seq 2** — bottlenecked convolution (shrinking the input-channel range,
  realized with a ``Stride`` over channels);
* **Seq 3** — grouped *and* bottlenecked convolution.
"""

from __future__ import annotations

from repro.core.library import C_IN, C_OUT, GROUPS, K1, SHRINK, conv2d_spec
from repro.core.operator import OperatorSpec, SynthesizedOperator
from repro.core.pgraph import PGraph
from repro.core.primitives import Merge, Reduce, Share, Split, Stride, Unfold
from repro.ir.size import Size


def _root(spec: OperatorSpec) -> PGraph:
    return PGraph.root(spec.output_shape, spec.input_shape,
                       output_names=["i_N", "i_Co", "i_H", "i_W"])


def _find(graph: PGraph, name: str):
    for dim in graph.frontier:
        if dim.name == name:
            return dim
    raise KeyError(name)


def _last(graph: PGraph):
    return graph.last_application.produced[-1]


def build_grouped_conv(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """NAS-PTE Seq 1: a grouped 3x3 convolution with ``g`` groups."""
    spec = spec or conv2d_spec()
    graph = _root(spec)
    graph = Merge(block=Size.of(C_OUT) / GROUPS).apply(graph, (_find(graph, "i_Co"),))
    g_dim, co_inner = graph.last_application.produced
    graph = Reduce(size=Size.of(C_IN) / GROUPS).apply(graph, ())
    c_inner = _last(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    kh = _last(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    kw = _last(graph)
    graph = Share(new_weight=True).apply(graph, (c_inner, co_inner))
    graph = Share(new_weight=False).apply(graph, (kh,))
    graph = Share(new_weight=False).apply(graph, (kw,))
    graph = Share(new_weight=False).apply(graph, (g_dim,))
    graph = Split().apply(graph, (g_dim, c_inner))
    graph = Unfold().apply(graph, (_find(graph, "i_H"), kh))
    graph = Unfold().apply(graph, (_find(graph, "i_W"), kw))
    return SynthesizedOperator.from_graph(graph, spec)


def build_bottleneck_conv(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """NAS-PTE Seq 2: a convolution contracting a strided subset of channels."""
    spec = spec or conv2d_spec()
    graph = _root(spec)
    graph = Reduce(size=Size.of(C_IN) / SHRINK).apply(graph, ())
    c_sub = _last(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    kh = _last(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    kw = _last(graph)
    graph = Share(new_weight=True).apply(graph, (c_sub, _find(graph, "i_Co")))
    graph = Share(new_weight=False).apply(graph, (kh,))
    graph = Share(new_weight=False).apply(graph, (kw,))
    graph = Unfold().apply(graph, (_find(graph, "i_H"), kh))
    graph = Unfold().apply(graph, (_find(graph, "i_W"), kw))
    graph = Stride(stride=Size.of(SHRINK)).apply(graph, (c_sub,))
    return SynthesizedOperator.from_graph(graph, spec)


def build_group_bottleneck_conv(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """NAS-PTE Seq 3: grouping and bottlenecking combined."""
    spec = spec or conv2d_spec()
    graph = _root(spec)
    graph = Merge(block=Size.of(C_OUT) / GROUPS).apply(graph, (_find(graph, "i_Co"),))
    g_dim, co_inner = graph.last_application.produced
    graph = Reduce(size=Size.of(C_IN) / (Size.of(GROUPS) * Size.of(SHRINK))).apply(graph, ())
    c_sub = _last(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    kh = _last(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    kw = _last(graph)
    graph = Share(new_weight=True).apply(graph, (c_sub, co_inner))
    graph = Share(new_weight=False).apply(graph, (kh,))
    graph = Share(new_weight=False).apply(graph, (kw,))
    graph = Share(new_weight=False).apply(graph, (g_dim,))
    graph = Unfold().apply(graph, (_find(graph, "i_H"), kh))
    graph = Unfold().apply(graph, (_find(graph, "i_W"), kw))
    graph = Stride(stride=Size.of(SHRINK)).apply(graph, (c_sub,))
    strided_channels = graph.last_application.produced[0]
    graph = Split().apply(graph, (g_dim, strided_channels))
    return SynthesizedOperator.from_graph(graph, spec)


NAS_PTE_SEQUENCES = {
    "seq1_grouped": build_grouped_conv,
    "seq2_bottleneck": build_bottleneck_conv,
    "seq3_group_bottleneck": build_group_bottleneck_conv,
}
