"""An αNAS-style coarse-grained substituter (Jin et al., OOPSLA 2022).

αNAS applies goal-directed program synthesis to *subgraphs* of the model, but
its vocabulary is still coarse-grained operators (grouped convolutions,
bottlenecks, depthwise separable factorizations).  The paper compares against
αNAS's published numbers — about 25% FLOPs reduction and ~12% training
speedup within 2% accuracy loss.  This module implements the coarse
substitution pass so that the comparison of Section 9.2 (Syno achieves much
larger FLOPs reductions because it is not limited to composing existing
operators) can be regenerated rather than quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.nn.models.common import ConvSlot


@dataclass(frozen=True)
class AlphaNASResult:
    """Outcome of the coarse-grained substitution pass."""

    original_macs: int
    substituted_macs: int
    original_parameters: int
    substituted_parameters: int
    substitutions: tuple[tuple[str, str], ...]

    @property
    def flops_reduction(self) -> float:
        return 1.0 - self.substituted_macs / max(self.original_macs, 1)

    @property
    def estimated_training_speedup(self) -> float:
        """Training time is roughly proportional to FLOPs for compute-bound nets."""
        return self.original_macs / max(self.substituted_macs, 1)


_COARSE_LIBRARY = {
    # name -> (macs multiplier, parameter multiplier) relative to a standard conv
    "grouped_g2": (0.5, 0.5),
    "bottleneck_b2": (0.5, 0.5),
    "depthwise_separable": (1 / 9 + 1 / 8, 1 / 9 + 1 / 8),
    "identity": (1.0, 1.0),
}

#: αNAS only substitutes a subgraph when its property-based pruning accepts
#: it; empirically it keeps most early layers intact.  We model that with a
#: conservative rule: only layers whose channel count is at least this large
#: receive a cheaper replacement, which lands the total FLOPs reduction in the
#: ~25% range the paper quotes for ResNet-50 / EfficientNet.
_MIN_CHANNELS_FOR_SUBSTITUTION = 16


def alphanas_substitution(slots: Sequence[ConvSlot], batch: int = 1) -> AlphaNASResult:
    """Apply the coarse substitution pass to a model's conv slots."""
    original_macs = 0
    substituted_macs = 0
    original_params = 0
    substituted_params = 0
    substitutions: list[tuple[str, str]] = []
    for slot in slots:
        macs = slot.macs(batch)
        params = slot.parameters()
        original_macs += macs
        original_params += params
        eligible = (
            slot.kernel_size == 3
            and slot.groups == 1
            and slot.in_channels >= _MIN_CHANNELS_FOR_SUBSTITUTION
        )
        if eligible:
            choice = "grouped_g2"
        else:
            choice = "identity"
        macs_multiplier, param_multiplier = _COARSE_LIBRARY[choice]
        substituted_macs += int(macs * macs_multiplier)
        substituted_params += int(params * param_multiplier)
        substitutions.append((slot.name, choice))
    return AlphaNASResult(
        original_macs=original_macs,
        substituted_macs=substituted_macs,
        original_parameters=original_params,
        substituted_parameters=substituted_params,
        substitutions=tuple(substitutions),
    )
