"""The stacked grouped convolution of the Figure 8 case study.

The paper stacks two grouped convolutions to obtain an operator with the same
FLOPs as Operator 1 but expressible by traditional NAS; it doubles the
accuracy degradation, which the paper attributes to the smaller receptive
field (3x3 instead of Operator 1's 3x5).  Here the stack is provided both as
a trainable module (for the accuracy side of the comparison) and as a staged
loop-nest program (for the latency side).
"""

from __future__ import annotations

from repro.codegen.loopnest import LoopNest, LoopNestProgram
from repro.nn import functional as F
from repro.nn.layers import BatchNorm2d, Conv2d, ReLU
from repro.nn.models.common import ConvSlot
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class StackedConvolution(Module):
    """Two stacked grouped convolutions (a 1D-ish then a full 3x3 grouped conv)."""

    def __init__(self, in_channels: int, out_channels: int, groups: int = 2, shrink: int = 2) -> None:
        super().__init__()
        hidden = max(out_channels // shrink, groups)
        self.conv1 = Conv2d(in_channels, hidden, kernel_size=3, groups=1)
        self.bn = BatchNorm2d(hidden)
        self.relu = ReLU()
        self.conv2 = Conv2d(hidden, out_channels, kernel_size=3, groups=groups)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv2(self.relu(self.bn(self.conv1(x))))


def stacked_conv_program(slot: ConvSlot, batch: int = 1, groups: int = 2, shrink: int = 2) -> LoopNestProgram:
    """Loop-nest program of the stacked convolution for one slot."""
    hidden = max(slot.out_channels // shrink, groups)
    spatial = slot.spatial
    stage1_macs = batch * hidden * spatial * spatial * slot.in_channels * 9
    stage2_macs = batch * slot.out_channels * spatial * spatial * (hidden // groups) * 9
    params1 = hidden * slot.in_channels * 9
    params2 = slot.out_channels * (hidden // groups) * 9
    input_elements = batch * slot.in_channels * spatial * spatial
    hidden_elements = batch * hidden * spatial * spatial
    output_elements = batch * slot.out_channels * spatial * spatial
    stages = (
        LoopNest(
            name=f"{slot.name}.stack1",
            extents=(batch, hidden, spatial, spatial, slot.in_channels, 3, 3),
            macs=stage1_macs,
            input_elements=input_elements,
            weight_elements=params1,
            output_elements=hidden_elements,
        ),
        LoopNest(
            name=f"{slot.name}.stack2",
            extents=(batch, slot.out_channels, spatial, spatial, hidden // groups, 3, 3),
            macs=stage2_macs,
            input_elements=hidden_elements,
            weight_elements=params2,
            output_elements=output_elements,
        ),
    )
    return LoopNestProgram(
        operator_name=f"{slot.name}.stacked",
        stages=stages,
        naive_macs=stage1_macs + stage2_macs,
        parameter_count=params1 + params2,
        input_elements=input_elements,
        output_elements=output_elements,
    )
