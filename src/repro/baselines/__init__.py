"""Baselines the paper compares against.

* :mod:`repro.baselines.nas_pte` — the three loop-transformation operator
  sequences of Turner et al. (NAS-PTE): grouping, bottlenecking and their
  combination, expressed as pGraphs so they flow through the same code
  generation and compilation pipeline as Syno's operators;
* :mod:`repro.baselines.stacked_conv` — the stacked grouped convolution used
  in the Figure 8 case study (what traditional NAS could have found instead of
  Operator 1);
* :mod:`repro.baselines.quantization` — INT8 post-training quantization (the
  other accuracy-for-latency trade in Figure 8);
* :mod:`repro.baselines.alphanas` — an αNAS-style coarse-grained subgraph
  substituter, used for the FLOPs-reduction comparison of Section 9.2.
"""

from repro.baselines.nas_pte import (
    NAS_PTE_SEQUENCES,
    build_bottleneck_conv,
    build_group_bottleneck_conv,
    build_grouped_conv,
)
from repro.baselines.stacked_conv import StackedConvolution, stacked_conv_program
from repro.baselines.quantization import QuantizationResult, quantize_model, quantized_latency
from repro.baselines.alphanas import AlphaNASResult, alphanas_substitution

__all__ = [
    "NAS_PTE_SEQUENCES",
    "build_grouped_conv",
    "build_bottleneck_conv",
    "build_group_bottleneck_conv",
    "StackedConvolution",
    "stacked_conv_program",
    "QuantizationResult",
    "quantize_model",
    "quantized_latency",
    "AlphaNASResult",
    "alphanas_substitution",
]
