"""The explicit, scoped runtime API (config + caches + store + RNG).

This package replaces the historical soup of ``REPRO_*`` environment reads
and module-global caches with two objects:

* :class:`RuntimeConfig` — a frozen, typed snapshot of every knob (dtype,
  budgets, shard counts, cache policy, results dir, seed), each field
  tagged with its provenance (``default`` / ``env`` / ``explicit``).
  :meth:`RuntimeConfig.from_env` is the *only* place ``REPRO_*`` variables
  are read, called once at each process edge (CLI entry, pytest bootstrap,
  sharded-worker bootstrap).
* :class:`RuntimeContext` — owns a :class:`CacheSet` (the reward / baseline
  / compile / plan caches plus snapshot persistence), the artifact store and
  the root RNG.  Thread it explicitly (``SearchSession(..., runtime=ctx)``),
  or scope it ambiently with ``with ctx.activate():`` — two contexts with
  different configs run concurrently in one process with fully isolated
  caches.

:func:`current` resolves the ambient context (innermost activation, falling
back to the env-derived process default), which is what the deprecation
shims in :mod:`repro.search.cache` delegate to.
"""

from repro.runtime.caches import (
    CACHE_FORMAT_VERSION,
    CacheSet,
    CacheStats,
    KeyedCache,
    SnapshotStatus,
    cache_snapshot_filename,
)
from repro.runtime.config import (
    ENV_KNOBS,
    PROVENANCE_DEFAULT,
    PROVENANCE_ENV,
    PROVENANCE_EXPLICIT,
    RuntimeConfig,
    env_float,
    env_int,
    explicit_context_seen,
    note_explicit_context,
    reset_deprecation_warnings,
)
from repro.runtime.context import RuntimeContext, current, default_context
from repro.runtime.faults import (
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    arm_worker,
    fault_sites,
    inject,
)
from repro.runtime.store import CacheLockTimeout, FileLock, SharedCacheStore

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheLockTimeout",
    "CacheSet",
    "CacheStats",
    "ENV_KNOBS",
    "FaultInjected",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "FileLock",
    "KeyedCache",
    "PROVENANCE_DEFAULT",
    "PROVENANCE_ENV",
    "PROVENANCE_EXPLICIT",
    "RuntimeConfig",
    "RuntimeContext",
    "SharedCacheStore",
    "SnapshotStatus",
    "arm_worker",
    "cache_snapshot_filename",
    "current",
    "default_context",
    "env_float",
    "env_int",
    "explicit_context_seen",
    "fault_sites",
    "inject",
    "note_explicit_context",
    "reset_deprecation_warnings",
]
