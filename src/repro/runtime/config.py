"""The typed runtime configuration (`RuntimeConfig`) and its env-var edge.

Every knob that used to be a free-floating ``REPRO_*`` environment read
(scattered across ``search/cache.py``, ``results/store.py``, the CLI, ...)
is now a field of one frozen dataclass.  Each field carries a **provenance**
tag recording where its value came from:

* ``default`` — the field's built-in default (possibly derived, e.g. the
  compute dtype following the smoke flag);
* ``env`` — parsed from the corresponding ``REPRO_*`` environment variable
  by :meth:`RuntimeConfig.from_env`, which is called once at each process
  edge (CLI entry, pytest bootstrap, sharded-worker bootstrap);
* ``explicit`` — set through the API (:meth:`RuntimeConfig.with_overrides`,
  or a direct constructor call).

Environment variables are deliberately demoted to an *edge-of-process
fallback*: inside the process, configuration travels as a
:class:`RuntimeConfig` on a :class:`~repro.runtime.context.RuntimeContext`.
Once a process has used the explicit context API, steering behaviour through
``REPRO_*`` variables is deprecated — reads through the fallback then emit a
:class:`DeprecationWarning` (once per knob; see :func:`note_explicit_context`).
"""

from __future__ import annotations

import dataclasses
import logging
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping

log = logging.getLogger(__name__)

#: Provenance tags a field's value can carry.
PROVENANCE_DEFAULT = "default"
PROVENANCE_ENV = "env"
PROVENANCE_EXPLICIT = "explicit"

#: config field -> the environment variable that backs it at the process edge.
ENV_KNOBS: dict[str, str] = {
    "smoke": "REPRO_SMOKE",
    "train_steps": "REPRO_TRAIN_STEPS",
    "dtype": "REPRO_DTYPE",
    "compiled_forward": "REPRO_COMPILED_FORWARD",
    "eval_cache": "REPRO_EVAL_CACHE",
    "eval_processes": "REPRO_EVAL_PROCESSES",
    "shards": "REPRO_SEARCH_SHARDS",
    "frontier_width": "REPRO_FRONTIER_WIDTH",
    "cache_max_entries": "REPRO_CACHE_MAX_ENTRIES",
    "cache_lock_timeout": "REPRO_CACHE_LOCK_TIMEOUT",
    "cache_live_sync": "REPRO_CACHE_LIVE_SYNC",
    "shard_timeout": "REPRO_SHARD_TIMEOUT",
    "shard_retries": "REPRO_SHARD_RETRIES",
    "fault_plan": "REPRO_FAULT_PLAN",
    "results_dir": "REPRO_RESULTS_DIR",
    "library_dir": "REPRO_LIBRARY_DIR",
    "seed": "REPRO_SEED",
    "verify_plans": "REPRO_VERIFY_PLANS",
    "warm_start": "REPRO_WARM_START",
}

_VALID_DTYPES = ("float32", "float64")

#: Values that turn a flag knob off (matching the historical env parsing).
_FALSY = ("", "0", "false", "no")


def env_int(name: str, default: int, environ: Mapping[str, str] | None = None) -> int:
    """An integer environment knob; malformed values fall back to the default."""
    environ = environ if environ is not None else os.environ
    raw = environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        log.warning("ignoring malformed %s=%r (expected an integer)", name, raw)
        return default


def env_float(name: str, default: float, environ: Mapping[str, str] | None = None) -> float:
    """A float environment knob; malformed values fall back to the default."""
    environ = environ if environ is not None else os.environ
    raw = environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        log.warning("ignoring malformed %s=%r (expected a number)", name, raw)
        return default


# ---------------------------------------------------------------------------
# Deprecation machinery for the env fallback
# ---------------------------------------------------------------------------

_EXPLICIT_CONTEXT_SEEN = False
_WARNED_KNOBS: set[str] = set()


def note_explicit_context() -> None:
    """Record that this process has activated an explicit runtime context.

    From this point on, ``REPRO_*`` variables read through the environment
    fallback emit a :class:`DeprecationWarning` (once per knob): a process
    that threads contexts explicitly should not also be steered by ambient
    environment state.
    """
    global _EXPLICIT_CONTEXT_SEEN
    _EXPLICIT_CONTEXT_SEEN = True


def explicit_context_seen() -> bool:
    return _EXPLICIT_CONTEXT_SEEN


def reset_deprecation_warnings() -> None:
    """Re-arm the once-per-knob deprecation warnings (used by tests)."""
    _WARNED_KNOBS.clear()


def _maybe_warn_env_fallback(variable: str) -> None:
    if not _EXPLICIT_CONTEXT_SEEN or variable in _WARNED_KNOBS:
        return
    _WARNED_KNOBS.add(variable)
    warnings.warn(
        f"{variable} was read through the environment-variable fallback after an "
        "explicit RuntimeContext was activated in this process; thread a "
        "repro.runtime.RuntimeContext (RuntimeConfig.with_overrides) instead "
        "of setting REPRO_* variables",
        DeprecationWarning,
        stacklevel=4,
    )


# ---------------------------------------------------------------------------
# The config
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RuntimeConfig:
    """Frozen, typed snapshot of every runtime knob, with per-field provenance.

    ``None`` for :attr:`train_steps` / :attr:`dtype` means "derived": the
    training budget follows the call site's full/smoke defaults and the dtype
    follows the smoke flag (float32 under smoke, float64 at full fidelity).
    Use :meth:`resolve_train_steps` / :meth:`dtype_name` for resolved values.
    """

    #: shrunken workloads (fewer models/layers/samples, smaller budgets).
    smoke: bool = False
    #: proxy-training step budget; ``None`` derives from ``smoke``.
    train_steps: int | None = None
    #: compute dtype name (``float32``/``float64``); ``None`` derives from ``smoke``.
    dtype: str | None = None
    #: run lowered operators through compiled execution plans.
    compiled_forward: bool = True
    #: whether the reward/baseline/compile/plan caches are active.
    eval_cache: bool = True
    #: worker processes for the legacy candidate-evaluation fan-out.
    eval_processes: int = 1
    #: worker shards for sharded search execution (1 = serial).
    shards: int = 1
    #: MCTS frontier width (rollouts proposed per reward wave).
    frontier_width: int = 8
    #: per-cache size cap of the persisted snapshot (``<= 0`` disables).
    cache_max_entries: int = 4096
    #: seconds to wait for the shared cache-store lock before giving up.
    cache_lock_timeout: float = 10.0
    #: merge shard-worker cache deltas through the shared store at wave
    #: boundaries, so concurrent processes share warmth live (not just at
    #: load/exit).
    cache_live_sync: bool = False
    #: per-shard wall-clock seconds before the supervised executor reaps a
    #: worker as hung (``<= 0`` disables the timeout).
    shard_timeout: float = 300.0
    #: supervised re-runs of a dead/hung shard before the executor falls back
    #: to in-process serial execution of that partition.
    shard_retries: int = 2
    #: fault-injection plan spec (see :mod:`repro.runtime.faults`); empty
    #: means no injected faults.
    fault_plan: str = ""
    #: root of the on-disk artifact store.
    results_dir: str = "results"
    #: root of the ahead-of-time graph library (see :mod:`repro.library`);
    #: empty derives ``<results_dir>/library`` (use :meth:`library_root`).
    library_dir: str = ""
    #: seed of the context's root RNG.
    seed: int = 0
    #: statically verify compiled execution plans before first execution.
    verify_plans: bool = False
    #: seed MCTS root frontiers (and the reward cache) from the graph
    #: library when one covers the searched spec (see
    #: :mod:`repro.library.warmstart`).
    warm_start: bool = False
    #: field name -> provenance tag; fields absent here are ``default``.
    provenance: Mapping[str, str] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.dtype is not None and self.dtype not in _VALID_DTYPES:
            raise ValueError(f"dtype must be one of {_VALID_DTYPES}, got {self.dtype!r}")
        if not self.provenance:
            # Direct construction: anything differing from the class default
            # was necessarily passed explicitly.
            tags = {
                name: PROVENANCE_EXPLICIT
                for name in ENV_KNOBS
                if getattr(self, name) != type(self).__dataclass_fields__[name].default
            }
            object.__setattr__(self, "provenance", tags)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_env(
        cls,
        environ: Mapping[str, str] | None = None,
        warn_on_fallback: bool = False,
    ) -> "RuntimeConfig":
        """Parse a config from ``REPRO_*`` environment variables.

        This is the one place in the codebase where those variables are read.
        It is called at process edges (CLI entry, the pytest bootstrap, the
        sharded-worker bootstrap) and by the ambient default context's
        refresh.  ``warn_on_fallback`` marks the latter: once an explicit
        context has been activated in the process, every env-sourced knob
        resolved through the fallback emits a ``DeprecationWarning`` (once
        per knob).
        """
        environ = environ if environ is not None else os.environ
        values: dict[str, Any] = {}
        tags: dict[str, str] = {}

        def flag(field_name: str, default: bool) -> None:
            raw = environ.get(ENV_KNOBS[field_name])
            if raw is None:
                values[field_name] = default
                return
            # An empty string counts as set-and-falsy (`REPRO_EVAL_CACHE= cmd`
            # has always disabled the feature), matching the historical parse.
            values[field_name] = raw not in _FALSY
            tags[field_name] = PROVENANCE_ENV

        def integer(field_name: str, default: int, minimum: int | None = None) -> None:
            variable = ENV_KNOBS[field_name]
            raw = environ.get(variable)
            value = env_int(variable, default, environ)
            values[field_name] = max(value, minimum) if minimum is not None else value
            if raw not in (None, "") and value != default:
                tags[field_name] = PROVENANCE_ENV
            elif raw not in (None, ""):
                try:
                    int(raw)  # well-formed but equal to the default: still env
                    tags[field_name] = PROVENANCE_ENV
                except ValueError:
                    pass  # malformed: fell back to the default

        def floating(field_name: str, default: float, minimum: float | None = None) -> None:
            variable = ENV_KNOBS[field_name]
            raw = environ.get(variable)
            value = env_float(variable, default, environ)
            values[field_name] = max(value, minimum) if minimum is not None else value
            if raw not in (None, ""):
                try:
                    float(raw)
                    tags[field_name] = PROVENANCE_ENV
                except ValueError:
                    pass  # malformed: fell back to the default

        flag("smoke", False)
        flag("compiled_forward", True)
        flag("eval_cache", True)
        flag("verify_plans", False)
        flag("cache_live_sync", False)
        flag("warm_start", False)
        integer("eval_processes", 1, minimum=1)
        integer("shards", 1, minimum=1)
        integer("frontier_width", 8, minimum=1)
        integer("cache_max_entries", 4096)
        integer("seed", 0)
        integer("shard_retries", 2, minimum=0)
        floating("cache_lock_timeout", 10.0, minimum=0.0)
        floating("shard_timeout", 300.0)

        raw_plan = environ.get(ENV_KNOBS["fault_plan"])
        values["fault_plan"] = ""
        if raw_plan:
            values["fault_plan"] = raw_plan
            tags["fault_plan"] = PROVENANCE_ENV

        raw_steps = environ.get(ENV_KNOBS["train_steps"])
        values["train_steps"] = None
        if raw_steps not in (None, ""):
            try:
                values["train_steps"] = int(raw_steps)
                tags["train_steps"] = PROVENANCE_ENV
            except ValueError:
                log.warning(
                    "ignoring malformed %s=%r (expected an integer)",
                    ENV_KNOBS["train_steps"], raw_steps,
                )

        raw_dtype = environ.get(ENV_KNOBS["dtype"])
        values["dtype"] = None
        if raw_dtype:
            name = raw_dtype.strip().lower()
            if name in _VALID_DTYPES:
                values["dtype"] = name
                tags["dtype"] = PROVENANCE_ENV
            else:
                log.warning(
                    "ignoring malformed %s=%r (expected float32/float64)",
                    ENV_KNOBS["dtype"], raw_dtype,
                )

        raw_dir = environ.get(ENV_KNOBS["results_dir"])
        values["results_dir"] = "results"
        if raw_dir:
            values["results_dir"] = raw_dir
            tags["results_dir"] = PROVENANCE_ENV

        raw_library = environ.get(ENV_KNOBS["library_dir"])
        values["library_dir"] = ""
        if raw_library:
            values["library_dir"] = raw_library
            tags["library_dir"] = PROVENANCE_ENV

        if warn_on_fallback:
            for field_name, tag in tags.items():
                if tag == PROVENANCE_ENV:
                    _maybe_warn_env_fallback(ENV_KNOBS[field_name])
        return cls(provenance=tags, **values)

    def with_overrides(self, **overrides: Any) -> "RuntimeConfig":
        """A copy with the given fields replaced, tagged ``explicit``."""
        unknown = sorted(set(overrides) - set(ENV_KNOBS))
        if unknown:
            raise TypeError(f"unknown RuntimeConfig field(s): {', '.join(unknown)}")
        tags = {**dict(self.provenance), **dict.fromkeys(overrides, PROVENANCE_EXPLICIT)}
        return dataclasses.replace(self, provenance=tags, **overrides)

    # -- derived values ------------------------------------------------------

    def dtype_name(self) -> str:
        """The resolved compute dtype (float32 under smoke, float64 otherwise)."""
        return self.dtype if self.dtype is not None else (
            "float32" if self.smoke else "float64"
        )

    def resolve_train_steps(self, full: int = 40, smoke: int = 8) -> int:
        """The proxy-training budget: explicit steps win, else smoke/full."""
        if self.train_steps is not None:
            return self.train_steps
        return smoke if self.smoke else full

    def tuning_trials(self, full: int, smoke: int | None = None) -> int:
        """The schedule-tuning trial budget, shrunk under smoke mode."""
        if not self.smoke:
            return full
        return smoke if smoke is not None else max(full // 3, 8)

    def smoke_value(self, full, smoke):
        """Pick between the full-fidelity and smoke value of a knob."""
        return smoke if self.smoke else full

    def library_root(self) -> str:
        """The resolved graph-library root (defaults under ``results_dir``)."""
        if self.library_dir:
            return self.library_dir
        return os.path.join(self.results_dir, "library")

    # -- reporting -----------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Resolved field -> value mapping (what records and ``repro config`` show)."""
        return {
            "smoke": self.smoke,
            "train_steps": self.train_steps,
            "dtype": self.dtype_name(),
            "compiled_forward": self.compiled_forward,
            "eval_cache": self.eval_cache,
            "eval_processes": self.eval_processes,
            "shards": self.shards,
            "frontier_width": self.frontier_width,
            "cache_max_entries": self.cache_max_entries,
            "cache_lock_timeout": self.cache_lock_timeout,
            "cache_live_sync": self.cache_live_sync,
            "shard_timeout": self.shard_timeout,
            "shard_retries": self.shard_retries,
            "fault_plan": self.fault_plan,
            "results_dir": self.results_dir,
            "library_dir": self.library_root(),
            "seed": self.seed,
            "verify_plans": self.verify_plans,
            "warm_start": self.warm_start,
        }

    def provenance_map(self) -> dict[str, str]:
        """field -> provenance for every field (``default`` when untagged)."""
        return {name: self.provenance.get(name, PROVENANCE_DEFAULT) for name in ENV_KNOBS}
