"""Evaluation caches as an owned object (`CacheSet`) instead of module globals.

A :class:`CacheSet` bundles the four evaluation caches — reward, compile,
baseline and plan — that used to live as process-wide globals in
``repro.search.cache``.  Each :class:`~repro.runtime.context.RuntimeContext`
owns one, so two contexts in one process have fully isolated caches; the
module-level default context owns the set that the legacy global API
operates on.

Snapshot persistence (:meth:`CacheSet.save_snapshot` /
:meth:`CacheSet.load_snapshot`) returns a structured :class:`SnapshotStatus`
instead of silently discarding problems: a version mismatch or an unreadable
pickle logs a warning naming the path and both versions, and the status is
surfaced by ``repro cache``.

Everything here is stdlib-only and import-light so the compiler, the search
core and the experiment harness can all depend on it without cycles.
"""

from __future__ import annotations

import logging
import pickle
import threading
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, TypeVar

log = logging.getLogger(__name__)

T = TypeVar("T")

#: Version of the on-disk snapshot format *and* of the cache key schemas.
#: Bump whenever a key or value type changes shape (e.g. a new field in
#: ``TuneResult`` or an extra component in an evaluation context) *or* the
#: meaning of a cached value changes (v3: trainings reseed the parameter
#: init RNG per work item, so rewards are order-independent): loading
#: ignores snapshots written under any other version, so stale entries can
#: never alias fresh ones.
CACHE_FORMAT_VERSION = 3


def cache_snapshot_filename() -> str:
    """Basename of the persisted snapshot (the key version is part of the name)."""
    return f"evaluation-cache-v{CACHE_FORMAT_VERSION}.pkl"


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses)


class KeyedCache:
    """A thread-safe dict cache with hit/miss accounting and LRU ordering.

    The underlying dict is kept in recency order (hits and inserts move the
    key to the end), so :meth:`export_entries` can apply an LRU-style size cap
    when the caches are persisted to disk.
    """

    _MISSING = object()

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = CacheStats()
        self._data: dict[Hashable, object] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __getstate__(self) -> dict:
        # Caches cross the process boundary when an explicit RuntimeContext is
        # shipped to a sharded worker.  Only the lock needs special handling:
        # entries ship as-is (pre-testing each one would pickle everything
        # twice).  A rare unpicklable entry fails the executor's payload
        # guard, which degrades to the result-identical serial map.
        return {
            "name": self.name,
            "stats": self.stats.snapshot(),
            "data": self.export_entries(),
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.stats = state["stats"]
        self._data = dict(state["data"])
        self._lock = threading.Lock()

    def lookup(self, key: Hashable) -> tuple[bool, object]:
        """``(found, value)`` for ``key``, updating the hit/miss counters."""
        with self._lock:
            value = self._data.get(key, self._MISSING)
            if value is self._MISSING:
                self.stats.misses += 1
                return False, None
            self.stats.hits += 1
            self._data[key] = self._data.pop(key)  # mark most recently used
            return True, value

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._data.pop(key, None)  # re-inserting marks it most recently used
            self._data[key] = value

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], T], enabled: bool | None = None
    ) -> T:
        """Cached value for ``key``, computing (outside the lock) on a miss.

        ``enabled=False`` bypasses the cache entirely (the ``eval_cache``
        knob); ``None`` resolves the ambient context's setting, which keeps
        bare ``KeyedCache`` instances honouring the legacy global knob.
        """
        if enabled is None:
            from repro.runtime.context import current

            enabled = current().config.eval_cache
        if not enabled:
            return compute()
        found, value = self.lookup(key)
        if found:
            return value  # type: ignore[return-value]
        result = compute()
        self.put(key, result)
        return result

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats = CacheStats()

    def key_snapshot(self) -> set:
        """The set of keys currently cached (used for shard-delta exports)."""
        with self._lock:
            return set(self._data)

    def export_entries(self, max_entries: int | None = None) -> dict[Hashable, object]:
        """A shallow copy of the cached entries (for persistence snapshots).

        ``max_entries`` keeps only the most recently used entries (the dict is
        maintained in recency order); ``None`` or a non-positive value exports
        everything.
        """
        with self._lock:
            if max_entries is not None and 0 < max_entries < len(self._data):
                keys = list(self._data)[-max_entries:]
                return {key: self._data[key] for key in keys}
            return dict(self._data)

    def merge_entries(self, entries: Mapping[Hashable, object]) -> int:
        """Insert entries that are not already cached; returns how many were added.

        In-process values win over persisted ones: an entry computed in this
        process is at least as fresh as anything on disk.
        """
        added = 0
        with self._lock:
            for key, value in entries.items():
                if key not in self._data:
                    self._data[key] = value
                    added += 1
        return added


# ---------------------------------------------------------------------------
# Snapshot status
# ---------------------------------------------------------------------------


@dataclass
class SnapshotStatus:
    """Structured outcome of one snapshot load or save (never an exception).

    ``status`` is one of ``loaded``/``saved``/``merged`` (success — ``merged``
    is a save whose delta joined entries other processes already published to
    the shared store), ``missing`` (no file on load), ``disabled`` (caches
    off), ``locked`` (the store lock was not acquired within the timeout),
    ``version-mismatch``, ``unreadable`` or ``write-failed``.  ``entries``
    counts per-cache entries added (load) or newly published (save);
    ``store_entries`` counts what the shared store holds in total afterwards.
    """

    action: str  # "load" | "save"
    path: str
    status: str
    entries: dict[str, int] = field(default_factory=dict)
    snapshot_version: int | None = None
    expected_version: int = CACHE_FORMAT_VERSION
    error: str = ""
    #: per-cache totals in the shared store after the operation.
    store_entries: dict[str, int] = field(default_factory=dict)
    #: seconds spent waiting for the store lock (0.0 when uncontended).
    lock_wait_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("loaded", "saved", "merged", "missing", "disabled")

    def to_dict(self) -> dict:
        """JSON-ready form (``repro cache --json``); round-trips via ``**``."""
        return {
            "action": self.action,
            "path": self.path,
            "status": self.status,
            "entries": dict(self.entries),
            "snapshot_version": self.snapshot_version,
            "expected_version": self.expected_version,
            "error": self.error,
            "store_entries": dict(self.store_entries),
            "lock_wait_seconds": self.lock_wait_seconds,
        }

    def _lock_wait_suffix(self) -> str:
        if self.lock_wait_seconds >= 0.1:
            return f"; waited {self.lock_wait_seconds:.1f}s for the store lock"
        return ""

    def summary(self) -> str:
        """One-line human-readable form (used by ``repro cache`` / ``repro run``)."""
        counts = ", ".join(f"{name}={count}" for name, count in sorted(self.entries.items()))
        totals = ", ".join(
            f"{name}={count}" for name, count in sorted(self.store_entries.items())
        )
        if self.status == "loaded":
            return f"loaded ({counts or 'nothing new'}){self._lock_wait_suffix()}"
        if self.status == "saved":
            return f"saved ({counts or 'empty'}){self._lock_wait_suffix()}"
        if self.status == "merged":
            return (
                f"merged ({counts or 'nothing new'}; store has {totals or 'nothing'})"
                f"{self._lock_wait_suffix()}"
            )
        if self.status == "locked":
            return f"locked: {self.error}"
        if self.status == "version-mismatch":
            return (
                f"ignored: snapshot version {self.snapshot_version!r} != "
                f"expected {self.expected_version}"
            )
        if self.status == "unreadable":
            return f"ignored: unreadable snapshot ({self.error})"
        if self.status == "write-failed":
            return f"not written ({self.error})"
        return self.status


# ---------------------------------------------------------------------------
# The cache set
# ---------------------------------------------------------------------------


class CacheSet:
    """The four evaluation caches one runtime context owns.

    ``reward``/``compile_``/``baseline`` persist to disk; ``plan`` holds
    numpy index arrays and contraction paths that are cheap to recompile, so
    it is memoized in memory only.  All four participate in shard-delta
    export/merge (shipping a compiled plan saves the recompile on the next
    wave).
    """

    def __init__(self) -> None:
        self.reward = KeyedCache("reward")
        self.compile_ = KeyedCache("compile")
        self.baseline = KeyedCache("baseline")
        self.plan = KeyedCache("plan")
        #: status of the most recent snapshot load/save through this set.
        self.last_load: SnapshotStatus | None = None
        self.last_save: SnapshotStatus | None = None

    def __getstate__(self) -> dict:
        # The last_* statuses are process-local diagnostics; don't ship them.
        state = dict(self.__dict__)
        state["last_load"] = None
        state["last_save"] = None
        return state

    # -- views ---------------------------------------------------------------

    def mergeable(self) -> dict[str, KeyedCache]:
        """name -> cache, for every cache that participates in shard merges."""
        return {
            "reward": self.reward,
            "baseline": self.baseline,
            "compile": self.compile_,
            "plan": self.plan,
        }

    def persisted(self) -> tuple[KeyedCache, ...]:
        return (self.reward, self.compile_, self.baseline)

    def all(self) -> tuple[KeyedCache, ...]:
        return (self.reward, self.compile_, self.baseline, self.plan)

    # -- bookkeeping ---------------------------------------------------------

    def clear(self) -> None:
        for cache in self.all():
            cache.clear()

    def stats(self) -> dict[str, CacheStats]:
        return {cache.name: cache.stats.snapshot() for cache in self.all()}

    def sizes(self) -> dict[str, int]:
        return {cache.name: len(cache) for cache in self.all()}

    # -- shard-delta export / merge ------------------------------------------

    def key_snapshots(self) -> dict[str, set]:
        """Per-cache key sets, taken before running a shard's work items."""
        return {name: cache.key_snapshot() for name, cache in self.mergeable().items()}

    def export_delta(self, before: Mapping[str, set]) -> dict[str, dict]:
        """Entries added since ``before``, filtered to what can cross a pipe."""
        delta: dict[str, dict] = {}
        for name, cache in self.mergeable().items():
            prior = before.get(name, set())
            fresh = {
                key: value
                for key, value in cache.export_entries().items()
                if key not in prior
            }
            if fresh:
                delta[name] = _picklable_entries(name, fresh)
        return delta

    def merge_delta(self, entries: Mapping[str, Mapping]) -> dict[str, int]:
        """Merge a worker's (or snapshot's) entries; returns added per cache."""
        added: dict[str, int] = {}
        caches = self.mergeable()
        for name, cache_entries in entries.items():
            cache = caches.get(name)
            if cache is not None and cache_entries:
                added[name] = added.get(name, 0) + cache.merge_entries(cache_entries)
        return added

    # -- disk persistence ----------------------------------------------------

    def save_snapshot(
        self,
        path: str,
        max_entries: int | None = None,
        enabled: bool = True,
        lock_timeout: float | None = None,
    ) -> SnapshotStatus:
        """Publish the reward/compile/baseline caches into the store at ``path``.

        Persistence goes through :class:`repro.runtime.store.SharedCacheStore`:
        under an advisory file lock, only this process's *delta* (entries the
        store does not hold yet) is appended, so N concurrent processes merge
        into one store instead of overwriting each other (status ``merged``
        when the store already held entries, ``saved`` when it was fresh, and
        ``locked`` when the lock was not acquired within ``lock_timeout``
        seconds).  Writes are atomic-or-appended with fsync, so an interrupted
        run never corrupts entries already persisted.  Persistence is
        best-effort and never raises: entries whose key or value cannot be
        pickled are skipped, and an unwritable destination returns a
        ``write-failed`` status instead of failing the experiment.
        ``max_entries`` caps each cache in the store to its most recently
        used entries (``None`` or ``<= 0`` disables the cap).  With the
        caches disabled nothing is written — they are empty then, and
        publishing would add nothing while churning the store.
        """
        path = str(path)
        if not enabled:
            status = SnapshotStatus("save", path, "disabled")
            self.last_save = status
            return status
        from repro.runtime.store import SharedCacheStore

        cap = max_entries if max_entries is not None and max_entries > 0 else None
        caches: dict[str, dict] = {
            cache.name: cache.export_entries(max_entries=cap) for cache in self.persisted()
        }
        for cache in self.persisted():
            dropped = len(cache) - len(caches[cache.name])
            if dropped > 0:
                log.info(
                    "snapshot cap: persisting %d/%d %s-cache entries (LRU eviction of %d)",
                    len(caches[cache.name]), len(cache), cache.name, dropped,
                )
        store = SharedCacheStore(path)
        status = store.publish(caches, max_entries=cap, lock_timeout=lock_timeout)
        self.last_save = status
        return status

    def load_snapshot(
        self, path: str, enabled: bool = True, lock_timeout: float | None = None
    ) -> SnapshotStatus:
        """Merge the persisted store at ``path`` into this set's caches.

        Already-present keys are kept (freshly computed values always win).
        A missing, corrupt or version-mismatched store loads nothing and
        is reported — never raised — through the returned status; corrupt
        and mismatched stores additionally log a warning naming the path
        and the versions involved.  Legacy whole-pickle snapshots (the
        pre-store format) still load, with their historical version checks;
        a store locked past ``lock_timeout`` seconds reports ``locked``.
        """
        path = str(path)
        if not enabled:
            status = SnapshotStatus("load", path, "disabled")
            self.last_load = status
            return status
        from repro.runtime.store import SharedCacheStore

        store = SharedCacheStore(path)
        entries, status = store.load(lock_timeout=lock_timeout)
        if entries is not None:
            by_name = {cache.name: cache for cache in self.persisted()}
            # Every persisted cache is reported (zero included), matching the
            # historical whole-pickle load counts.
            added: dict[str, int] = {name: 0 for name in by_name}
            for name, cache_entries in entries.items():
                cache = by_name.get(name)
                if cache is not None and isinstance(cache_entries, dict):
                    added[name] = cache.merge_entries(cache_entries)
            status.entries = added
        self.last_load = status
        return status


def _picklable_entries(
    cache_name: str, entries: Mapping[Hashable, object], warn: bool = False
) -> dict:
    """Drop entries that cannot cross a process or disk boundary (best-effort)."""
    emit = log.warning if warn else log.debug
    picklable: dict[Hashable, object] = {}
    for key, value in entries.items():
        try:
            pickle.dumps((key, value))
        except Exception as exc:
            emit("not persisting %s-cache entry %r: %s", cache_name, key, exc)
        else:
            picklable[key] = value
    return picklable
