"""Fault injection: a registry of crash-prone seams and a plan to break them.

The supervised shard executor (:func:`repro.search.parallel.sharded_map`)
promises that a worker dying — OOM-killed, hung, or crashing mid-item —
degrades a run instead of corrupting it.  That promise is only worth having
if it is mechanically exercised, so this module makes faults a first-class,
*declarative* input: the ``fault_plan`` config field (env edge:
``REPRO_FAULT_PLAN``) carries a plan of rules, and the code under test calls
:func:`inject` at a small set of **registered sites** — the seams where real
production faults land:

========================  ====================================================
site                      where it fires
========================  ====================================================
``shard-entry``           supervised shard worker body, after context
                          activation and before any work item runs
``item-eval``             before each work item is evaluated in a shard worker
``store-publish``         inside :meth:`SharedCacheStore.publish`, under the
                          store lock's error envelope
``snapshot-load``         inside :meth:`SharedCacheStore.load`, ditto
========================  ====================================================

**Plan grammar.**  Rules are separated by ``;``; each rule is
``action:site[:key=value,...]``::

    kill:shard-entry:shard=1,attempt=1
    hang:item-eval:shard=0
    raise:store-publish
    exit:shard-entry:shard=2,exitcode=3

Actions: ``kill`` (SIGKILL the current process), ``exit`` (``os._exit``),
``hang`` (sleep ``seconds=``, default far beyond any shard timeout) and
``raise`` (raise :class:`FaultInjected`).  Matchers: ``shard=N`` and
``attempt=N`` (1-based) scope a rule to one shard worker / one supervision
attempt — ``attempt=1`` is the canonical *transient* fault, killed once and
healthy on retry.  The first matching rule fires.

**Safety.**  The destructive actions (``kill``/``exit``/``hang``) only ever
fire inside a supervised shard worker — the executor arms the forked child
with :func:`arm_worker` after the fork, and an unarmed process ignores them
with a warning.  The parent process, and the in-process serial fallback at
the bottom of the degradation ladder, can therefore never be killed by a
plan, which is precisely what makes ``repro chaos``'s fingerprint-parity
assertion well-defined.  ``raise`` is allowed anywhere; it raises
:class:`FaultInjected`, an :class:`OSError` subclass, so injected store
faults flow through the very same ``except OSError`` envelopes that absorb
real I/O failures into ``SnapshotStatus`` degradations.
"""

from __future__ import annotations

import logging
import os
import signal as _signal
import time
from dataclasses import dataclass

log = logging.getLogger(__name__)


class FaultPlanError(ValueError):
    """A ``fault_plan`` spec that does not parse or names unknown sites/keys."""


class FaultInjected(OSError):
    """The error raised by a ``raise`` rule.

    Subclasses :class:`OSError` deliberately: injected faults at the store
    seams must exercise the same degradation paths (``write-failed`` /
    ``unreadable`` statuses) that genuine I/O errors take.
    """


# ---------------------------------------------------------------------------
# Site registry
# ---------------------------------------------------------------------------

#: site name -> human description; :func:`inject` only accepts registered
#: sites and the plan parser only accepts these names.
_SITES: dict[str, str] = {}


def register_site(name: str, description: str) -> str:
    """Register an injection site; returns the name for use as a constant."""
    _SITES[name] = description
    return name


SITE_SHARD_ENTRY = register_site(
    "shard-entry", "supervised shard worker entry, before any work item"
)
SITE_ITEM_EVAL = register_site(
    "item-eval", "before each work item evaluated in a shard worker"
)
SITE_STORE_PUBLISH = register_site(
    "store-publish", "shared cache store publish, under its error envelope"
)
SITE_SNAPSHOT_LOAD = register_site(
    "snapshot-load", "shared cache store load, under its error envelope"
)


def fault_sites() -> dict[str, str]:
    """The registered injection sites (name -> description)."""
    return dict(_SITES)


# ---------------------------------------------------------------------------
# Plan parsing
# ---------------------------------------------------------------------------

_ACTIONS = ("kill", "exit", "hang", "raise")
#: actions that take the process down (or wedge it); confined to supervised
#: shard workers by :func:`_fire`.
_DESTRUCTIVE_ACTIONS = ("kill", "exit", "hang")

#: default ``hang`` duration — far beyond any sane shard timeout, so a hang
#: rule means "wedge until the supervisor reaps me" unless ``seconds=`` says
#: otherwise.
_DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultRule:
    """One parsed plan rule: an action at a site, optionally scoped."""

    action: str
    site: str
    shard: int | None = None
    attempt: int | None = None
    seconds: float = _DEFAULT_HANG_SECONDS
    exitcode: int = 17

    def matches(self, site: str, shard: int | None, attempt: int | None) -> bool:
        if site != self.site:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    def describe(self) -> str:
        scope = [
            f"shard={self.shard}" if self.shard is not None else "",
            f"attempt={self.attempt}" if self.attempt is not None else "",
        ]
        suffix = ",".join(part for part in scope if part)
        return f"{self.action}:{self.site}" + (f":{suffix}" if suffix else "")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultRule`\\ s parsed from one spec string."""

    rules: tuple[FaultRule, ...] = ()
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``action:site[:key=value,...]`` (``;``-separated) spec.

        Raises :class:`FaultPlanError` on unknown actions, unregistered
        sites, unknown matcher keys or malformed values — a chaos run with a
        typo'd plan must fail loudly, not silently run fault-free.
        """
        rules: list[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) not in (2, 3):
                raise FaultPlanError(
                    f"malformed fault rule {chunk!r}: expected action:site[:key=value,...]"
                )
            action, site = parts[0].strip(), parts[1].strip()
            if action not in _ACTIONS:
                raise FaultPlanError(
                    f"unknown fault action {action!r} (expected one of {', '.join(_ACTIONS)})"
                )
            if site not in _SITES:
                raise FaultPlanError(
                    f"unknown fault site {site!r} (registered sites: "
                    f"{', '.join(sorted(_SITES))})"
                )
            kwargs: dict[str, object] = {}
            if len(parts) == 3:
                for pair in parts[2].split(","):
                    pair = pair.strip()
                    if not pair:
                        continue
                    key, separator, raw = pair.partition("=")
                    key = key.strip()
                    if not separator or not raw:
                        raise FaultPlanError(
                            f"malformed matcher {pair!r} in rule {chunk!r} (expected key=value)"
                        )
                    try:
                        if key in ("shard", "attempt", "exitcode"):
                            kwargs[key] = int(raw)
                        elif key == "seconds":
                            kwargs[key] = float(raw)
                        else:
                            raise FaultPlanError(
                                f"unknown matcher key {key!r} in rule {chunk!r} "
                                "(known: shard, attempt, seconds, exitcode)"
                            )
                    except ValueError:
                        raise FaultPlanError(
                            f"malformed value {raw!r} for {key!r} in rule {chunk!r}"
                        ) from None
            rules.append(FaultRule(action=action, site=site, **kwargs))  # type: ignore[arg-type]
        return cls(rules=tuple(rules), spec=spec)

    def rule_for(
        self, site: str, shard: int | None, attempt: int | None
    ) -> FaultRule | None:
        """The first rule matching this (site, shard, attempt), if any."""
        for rule in self.rules:
            if rule.matches(site, shard, attempt):
                return rule
        return None


#: parsed-plan memo: spec string -> plan.  Plans are tiny and specs few, so
#: this never needs eviction; it keeps :func:`inject` cheap on hot paths.
_PLAN_CACHE: dict[str, FaultPlan] = {}

_EMPTY_PLAN = FaultPlan()


def plan_from(spec: str) -> FaultPlan:
    """The parsed plan for a spec string (memoized; '' is the empty plan)."""
    if not spec:
        return _EMPTY_PLAN
    plan = _PLAN_CACHE.get(spec)
    if plan is None:
        plan = FaultPlan.parse(spec)
        _PLAN_CACHE[spec] = plan
    return plan


# ---------------------------------------------------------------------------
# Worker arming + injection
# ---------------------------------------------------------------------------

#: identity of the supervised shard worker this process is (armed post-fork
#: by the executor); ``None`` outside a worker — where destructive actions
#: are refused.
_WORKER_SHARD: int | None = None
_WORKER_ATTEMPT: int | None = None


def arm_worker(shard: int, attempt: int) -> None:
    """Mark this process as supervised shard ``shard``, attempt ``attempt``.

    Called by the executor inside the freshly forked child.  Destructive
    fault actions only fire in an armed process, and shard/attempt matchers
    resolve against these values.
    """
    global _WORKER_SHARD, _WORKER_ATTEMPT
    _WORKER_SHARD = shard
    _WORKER_ATTEMPT = attempt


def disarm_worker() -> None:
    """Clear the worker identity (tests that inject in-process use this)."""
    global _WORKER_SHARD, _WORKER_ATTEMPT
    _WORKER_SHARD = None
    _WORKER_ATTEMPT = None


def worker_identity() -> tuple[int | None, int | None]:
    """``(shard, attempt)`` of the armed worker, or ``(None, None)``."""
    return _WORKER_SHARD, _WORKER_ATTEMPT


def inject(site: str, runtime=None) -> None:
    """Fire the active plan's first matching rule at ``site``, if any.

    ``runtime`` is the context whose config carries the plan; ``None``
    resolves the ambient context.  With an empty plan this is a fast no-op —
    the hot paths (per-item evaluation) pay one attribute read.  Raises
    :class:`FaultInjected` for ``raise`` rules and :class:`FaultPlanError`
    for malformed specs (callers validate upfront via :meth:`FaultPlan.parse`
    when the spec is user input).
    """
    if site not in _SITES:
        raise ValueError(f"unregistered fault site {site!r}")
    if runtime is None:
        from repro.runtime.context import current  # lazy: avoids an import cycle

        runtime = current()
    spec = getattr(runtime.config, "fault_plan", "")
    if not spec:
        return
    rule = plan_from(spec).rule_for(site, _WORKER_SHARD, _WORKER_ATTEMPT)
    if rule is not None:
        _fire(rule)


def _fire(rule: FaultRule) -> None:
    if rule.action in _DESTRUCTIVE_ACTIONS and _WORKER_SHARD is None:
        # The parent (or the serial fallback) must survive every plan: only
        # supervised children — which the executor can reap and retry — are
        # allowed to die.  This confinement is what makes fault-ridden and
        # fault-free runs comparable at all.
        log.warning(
            "fault plan: ignoring destructive rule %s outside a supervised "
            "shard worker", rule.describe(),
        )
        return
    log.info("fault plan: firing %s (pid %d)", rule.describe(), os.getpid())
    if rule.action == "kill":
        os.kill(os.getpid(), _signal.SIGKILL)
    elif rule.action == "exit":
        os._exit(rule.exitcode)
    elif rule.action == "hang":
        time.sleep(rule.seconds)
    elif rule.action == "raise":
        raise FaultInjected(
            f"injected fault at {rule.site} (rule {rule.describe()}, pid {os.getpid()})"
        )
