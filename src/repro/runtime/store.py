"""Process-safe shared cache store: a framed append/merge log behind a file lock.

PR 5's snapshot was one pickle written at process exit — two concurrent
``repro run``s raced and the *last* writer won, silently discarding the other
process's rewards.  This module replaces that with a store N processes on one
box can share:

* **Per-entry frames, append/merge semantics.**  The store file is a log of
  self-delimiting frames (magic + length + CRC32 + pickled
  ``{"version": ..., "caches": {name: {key: value}}}``).  A publisher reads
  what is already on disk, appends only its *delta* (entries the store does
  not have yet), and rewrites the log into one compact frame only when the
  LRU cap is exceeded or the file needs repair — so two concurrent
  publishers both land, instead of overwriting each other.
* **Advisory file lock.**  All writes (and consistent loads) happen under a
  lock *directory* next to the store (``<path>.lock``), in the style of
  Theano's compile lock: atomic ``os.mkdir`` acquisition, exponential
  backoff while waiting, a configurable timeout
  (``RuntimeConfig.cache_lock_timeout`` / ``REPRO_CACHE_LOCK_TIMEOUT``),
  and stale-lock detection with forced unlock — a lock whose recorded owner
  is a dead pid on this host is broken immediately; a foreign or unreadable
  lock is broken after ``stale_timeout`` seconds.
* **Crash tolerance.**  Frames are appended with flush+fsync, so a writer
  SIGKILLed mid-write can leave at most one torn frame at the *tail* of the
  log.  Readers stop at the first bad frame (everything before it loads
  fine) and the next publisher truncates the torn tail before appending —
  the store is self-repairing, and the dead writer's lock is reclaimed by
  the stale-holder check.
* **Version migration.**  A store path holding an old-style whole-pickle
  snapshot (the PR 2–5 format) is absorbed on first contact: loads merge it
  with the historical version checking (mismatched or unreadable pickles
  are reported, never raised), and the first publish rewrites it as a
  framed log.

The one exception to "everything is locked" is :meth:`read_new_entries`,
the incremental refresh used by the sharded executor's live sync at wave
boundaries: it reads lock-free from the last seen byte offset.  Torn tails
are benign there (the frame is picked up on the next refresh), and a
concurrent compaction is detected by offset/parse mismatch and answered by
re-reading from the start — merging a cache entry twice is idempotent.

Everything here is stdlib-only, keeping :mod:`repro.runtime` import-light.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import socket
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Mapping

from repro.runtime.caches import (
    CACHE_FORMAT_VERSION,
    SnapshotStatus,
    _picklable_entries,
)
from repro.runtime.faults import SITE_SNAPSHOT_LOAD, SITE_STORE_PUBLISH, inject

log = logging.getLogger(__name__)

#: Default seconds a process waits for the store lock before reporting
#: ``locked`` (env edge: ``REPRO_CACHE_LOCK_TIMEOUT``).
DEFAULT_LOCK_TIMEOUT = 10.0
#: Seconds after which a lock whose holder cannot be probed (another host,
#: unreadable info) is presumed dead and forcibly broken.  Same-host holders
#: are probed by pid and broken immediately when dead.
DEFAULT_STALE_TIMEOUT = 300.0

#: Every frame starts with this magic; it is also how :class:`CacheSet`
#: persistence tells a framed store from a legacy whole-pickle snapshot.
FRAME_MAGIC = b"RPCS"
#: magic (4s) | payload length (u32 BE) | CRC32 of the payload (u32 BE).
FRAME_HEADER = struct.Struct(">4sII")


class CacheLockTimeout(TimeoutError):
    """The store lock could not be acquired within the timeout.

    Carries :attr:`waited` (seconds spent trying) so callers can surface the
    wait in a :class:`~repro.runtime.caches.SnapshotStatus`.
    """

    def __init__(self, message: str, waited: float = 0.0) -> None:
        super().__init__(message)
        self.waited = waited


# ---------------------------------------------------------------------------
# The advisory file lock
# ---------------------------------------------------------------------------


class FileLock:
    """An advisory inter-process lock: an atomically-created lock directory.

    ``os.mkdir`` is atomic on every platform we care about, which makes the
    directory itself the lock token; an ``info`` file inside records the
    holder (pid, host, acquisition wall-time) for diagnostics and for the
    stale-holder check.  The lock is *advisory*: only cooperating callers
    (the store's publish/load paths) go through it.

    Not reentrant — one acquisition per instance at a time.  Use either the
    context-manager form (``with lock.acquire(timeout=...):`` or plain
    ``with lock:``) or explicit :meth:`acquire`/:meth:`release`.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        timeout: float = DEFAULT_LOCK_TIMEOUT,
        stale_timeout: float = DEFAULT_STALE_TIMEOUT,
    ) -> None:
        self.path = str(path)
        self.timeout = timeout
        self.stale_timeout = stale_timeout
        #: seconds the most recent successful acquisition waited.
        self.last_wait = 0.0
        #: stale locks this instance forcibly broke (test/diagnostic surface).
        self.breaks = 0
        self._held = False

    @property
    def info_path(self) -> str:
        return os.path.join(self.path, "info")

    def read_info(self) -> dict | None:
        """The current holder's ``{"pid", "host", "time"}``, or ``None``.

        ``None`` means the lock directory is absent *or* its info file is not
        readable yet (a holder mid-acquisition, or a crash between ``mkdir``
        and the info write).
        """
        try:
            with open(self.info_path, "r", encoding="utf-8") as handle:
                info = json.load(handle)
        except (OSError, ValueError):
            return None
        return info if isinstance(info, dict) else None

    def is_held(self) -> bool:
        return self._held

    def _is_stale(self, info: dict | None) -> bool:
        """Whether the current holder can safely be presumed dead."""
        if info is None:
            # No readable info: either a holder between mkdir and the info
            # write (give it a grace period) or a crash in that window.
            try:
                age = time.time() - os.stat(self.path).st_mtime
            except OSError:
                return False  # lock vanished — not stale, just gone
            return age > max(self.stale_timeout, 5.0)
        pid, host = info.get("pid"), info.get("host")
        if host == socket.gethostname() and isinstance(pid, int):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # recorded owner is dead on this very host
            except OSError:
                pass  # e.g. EPERM: alive but not ours
            return False
        age = time.time() - float(info.get("time", 0.0))
        return age > self.stale_timeout

    def break_lock(self, expected: dict | None = None) -> bool:
        """Forcibly remove the lock (stale-holder recovery / manual unlock).

        With ``expected`` given, the break is conditional: if the on-disk
        holder info changed since ``expected`` was read (the stale holder
        released and someone else acquired), nothing is removed.  Returns
        whether the lock is gone.
        """
        if expected is not None:
            now = self.read_info()
            if now is not None and (
                now.get("pid") != expected.get("pid")
                or now.get("time") != expected.get("time")
            ):
                return False
        try:
            os.unlink(self.info_path)
        except OSError:
            pass
        try:
            os.rmdir(self.path)
        except FileNotFoundError:
            return True
        except OSError:
            return False
        return True

    def acquire(self, timeout: float | None = None) -> "FileLock":
        """Take the lock, waiting up to ``timeout`` seconds (default: ctor's).

        Waits with exponential backoff (1 ms doubling to 50 ms); a stale
        holder is broken and the acquisition retried immediately.  Raises
        :class:`CacheLockTimeout` when the deadline passes.
        """
        if self._held:
            raise RuntimeError(f"lock {self.path} is already held by this instance")
        timeout = self.timeout if timeout is None else timeout
        start = time.monotonic()
        deadline = start + max(timeout, 0.0)
        delay = 0.001
        while True:
            try:
                os.makedirs(os.path.dirname(os.path.abspath(self.path)), exist_ok=True)
                os.mkdir(self.path)
            except FileExistsError:
                info = self.read_info()
                if self._is_stale(info):
                    holder = self._describe_holder(info)
                    if self.break_lock(expected=info):
                        self.breaks += 1
                        log.warning(
                            "broke stale cache-store lock %s (%s)", self.path, holder
                        )
                        continue
                now = time.monotonic()
                if now >= deadline:
                    waited = now - start
                    raise CacheLockTimeout(
                        f"cache-store lock {self.path} still held "
                        f"({self._describe_holder(info)}) after {timeout:.1f}s",
                        waited=waited,
                    )
                time.sleep(min(delay, max(deadline - now, 0.0)))
                delay = min(delay * 2, 0.05)
            else:
                try:
                    with open(self.info_path, "w", encoding="utf-8") as handle:
                        json.dump(
                            {
                                "pid": os.getpid(),
                                "host": socket.gethostname(),
                                "time": time.time(),
                            },
                            handle,
                        )
                except OSError:
                    pass  # diagnostics only; the directory is the lock
                self._held = True
                self.last_wait = time.monotonic() - start
                return self

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        self.break_lock()

    @staticmethod
    def _describe_holder(info: dict | None) -> str:
        if info is None:
            return "holder unknown"
        return f"held by pid {info.get('pid')} on {info.get('host')}"

    def __enter__(self) -> "FileLock":
        # Plain `with lock:` acquires with the constructor timeout;
        # `with lock.acquire(timeout=...):` reuses the already-held lock.
        if not self._held:
            self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


# ---------------------------------------------------------------------------
# Frame parsing
# ---------------------------------------------------------------------------


@dataclass
class _StoreContents:
    """What one pass over the store file saw."""

    #: per-cache entries in recency order (later frames count as fresher).
    entries: dict[str, dict] = field(default_factory=dict)
    #: complete, version-matching frames.
    frames: int = 0
    #: complete frames skipped for carrying a different format version.
    skipped_frames: int = 0
    #: the version of the first skipped frame (for version-mismatch reports).
    wrong_version: int | None = None
    #: byte offset just past the last complete frame (truncation point).
    end_offset: int = 0
    #: description of the torn/garbage tail, if any.
    tail_error: str | None = None


def _parse_frames(buffer: bytes, start: int = 0) -> _StoreContents:
    contents = _StoreContents(end_offset=start)
    position = start
    header_size = FRAME_HEADER.size
    while position < len(buffer):
        header = buffer[position : position + header_size]
        if len(header) < header_size:
            contents.tail_error = f"truncated frame header at byte {position}"
            break
        magic, length, checksum = FRAME_HEADER.unpack(header)
        if magic != FRAME_MAGIC:
            contents.tail_error = f"bad frame magic at byte {position}"
            break
        payload = buffer[position + header_size : position + header_size + length]
        if len(payload) < length:
            contents.tail_error = f"truncated frame payload at byte {position}"
            break
        if zlib.crc32(payload) != checksum:
            contents.tail_error = f"frame checksum mismatch at byte {position}"
            break
        try:
            frame = pickle.loads(payload)
        except Exception as exc:
            contents.tail_error = f"unpicklable frame at byte {position}: {exc}"
            break
        position += header_size + length
        contents.end_offset = position
        if not isinstance(frame, dict) or frame.get("version") != CACHE_FORMAT_VERSION:
            contents.skipped_frames += 1
            if contents.wrong_version is None:
                version = frame.get("version") if isinstance(frame, dict) else None
                contents.wrong_version = version
            continue
        contents.frames += 1
        for name, cache_entries in frame.get("caches", {}).items():
            if not isinstance(cache_entries, dict):
                continue
            merged = contents.entries.setdefault(name, {})
            for key, value in cache_entries.items():
                # Re-inserting moves the key to the end: later frames are
                # fresher, which is what the LRU compaction cap keys off.
                merged.pop(key, None)
                merged[key] = value
    return contents


def _pack_frame(caches: Mapping[str, Mapping]) -> bytes:
    payload = pickle.dumps(
        {"version": CACHE_FORMAT_VERSION, "caches": {k: dict(v) for k, v in caches.items()}},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return FRAME_HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


# ---------------------------------------------------------------------------
# The shared store
# ---------------------------------------------------------------------------


@dataclass
class _DiskState:
    """The store file as one publish/load transaction sees it (under lock)."""

    contents: _StoreContents
    #: the file needs a full compact rewrite (legacy format, missing, torn
    #: head, or wrong-version frames worth garbage-collecting).
    needs_rewrite: bool
    #: file existed at all (distinguishes ``saved`` from ``merged``).
    existed: bool
    #: legacy pickle outcome, when the file was not a framed store:
    #: ``None`` (it was framed) | "loaded" | "version-mismatch" | "unreadable".
    legacy_status: str | None = None
    legacy_version: int | None = None
    legacy_error: str = ""


class SharedCacheStore:
    """The process-safe, append/merge backing of cache persistence.

    One instance wraps one store path; the lock lives at ``<path>.lock``.
    Entry payloads are plain ``{cache name: {key: value}}`` mappings — the
    :class:`~repro.runtime.caches.CacheSet` integration (export, merge,
    enablement) stays in ``caches.py``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
        stale_timeout: float = DEFAULT_STALE_TIMEOUT,
    ) -> None:
        self.path = str(path)
        self.lock = FileLock(
            self.path + ".lock", timeout=lock_timeout, stale_timeout=stale_timeout
        )
        self._refresh_offset = 0

    # -- raw reading ---------------------------------------------------------

    def _read_disk(self) -> _DiskState:
        """Parse the store file (caller holds the lock)."""
        try:
            with open(self.path, "rb") as handle:
                buffer = handle.read()
        except FileNotFoundError:
            return _DiskState(_StoreContents(), needs_rewrite=True, existed=False)
        except OSError as exc:
            raise exc
        if buffer.startswith(FRAME_MAGIC):
            contents = _parse_frames(buffer)
            # A torn head (no complete frame at all) or dead wrong-version
            # frames are repaired/garbage-collected by rewriting compactly.
            rewrite = contents.skipped_frames > 0 or (
                contents.frames == 0 and contents.tail_error is not None
            )
            return _DiskState(contents, needs_rewrite=rewrite, existed=True)
        # Legacy whole-pickle snapshot (or garbage): absorb with the
        # historical version checking, then rewrite framed.
        state = _DiskState(_StoreContents(), needs_rewrite=True, existed=True)
        try:
            payload = pickle.loads(buffer)
        except Exception as exc:
            state.legacy_status = "unreadable"
            state.legacy_error = str(exc)
            return state
        found = payload.get("version") if isinstance(payload, dict) else None
        if not isinstance(payload, dict) or found != CACHE_FORMAT_VERSION:
            state.legacy_status = "version-mismatch"
            state.legacy_version = found
            return state
        state.legacy_status = "loaded"
        for name, cache_entries in payload.get("caches", {}).items():
            if isinstance(cache_entries, dict):
                state.contents.entries[name] = dict(cache_entries)
        state.contents.frames = 1
        return state

    # -- writing -------------------------------------------------------------

    def _rewrite(self, caches: Mapping[str, Mapping]) -> int:
        """Atomically replace the store with one compact frame; returns size."""
        frame = _pack_frame(caches)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        return len(frame)

    def _append(self, caches: Mapping[str, Mapping], end_offset: int) -> None:
        """Append one frame after the last good frame, dropping a torn tail."""
        frame = _pack_frame(caches)
        with open(self.path, "r+b") as handle:
            handle.truncate(end_offset)
            handle.seek(end_offset)
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())

    def publish(
        self,
        entries: Mapping[str, Mapping],
        max_entries: int | None = None,
        lock_timeout: float | None = None,
    ) -> SnapshotStatus:
        """Merge ``entries`` into the store; other publishers' work survives.

        Under the lock: read what is on disk, append only the delta (keys the
        store lacks), and compact — one frame, ``max_entries`` most recent
        per cache — only when the cap is exceeded or the file needs repair
        (legacy format, torn head, version-skipped frames).  Returns a
        :class:`SnapshotStatus`: ``saved`` (store was absent or empty),
        ``merged`` (our delta joined existing entries), ``locked`` (timeout)
        or ``write-failed``; ``entries`` counts the delta actually appended
        and ``store_entries`` the per-cache totals after the publish.
        """
        cap = max_entries if max_entries is not None and max_entries > 0 else None
        try:
            # Inside the error envelope on purpose: an injected fault here
            # (FaultInjected is an OSError) exercises the same degradation
            # a real disk failure would — a `write-failed` status, never a
            # crashed publisher.
            inject(SITE_STORE_PUBLISH)
            with self.lock.acquire(timeout=lock_timeout):
                state = self._read_disk()
                disk = state.contents.entries
                delta = {}
                for name, fresh in entries.items():
                    present = disk.get(name, {})
                    new = {key: value for key, value in fresh.items() if key not in present}
                    if new:
                        new = _picklable_entries(name, new)
                    if new:
                        delta[name] = new
                combined: dict[str, dict] = {name: dict(values) for name, values in disk.items()}
                for name, new in delta.items():
                    combined.setdefault(name, {}).update(new)
                over_cap = cap is not None and any(
                    len(values) > cap for values in combined.values()
                )
                if state.needs_rewrite or over_cap:
                    if cap is not None:
                        combined = {
                            name: dict(list(values.items())[-cap:])
                            for name, values in combined.items()
                        }
                    self._rewrite(combined)
                elif delta:
                    self._append(delta, state.contents.end_offset)
                elif state.contents.tail_error is not None:
                    # Nothing of ours to write, but repair the torn tail so
                    # readers stop re-reporting it.
                    self._append({}, state.contents.end_offset)
                had_entries = any(disk.values())
                status = SnapshotStatus(
                    "save",
                    self.path,
                    "merged" if had_entries else "saved",
                    entries={name: len(new) for name, new in delta.items()},
                    store_entries={name: len(values) for name, values in combined.items()},
                    lock_wait_seconds=round(self.lock.last_wait, 3),
                )
                if state.contents.tail_error is not None:
                    log.warning(
                        "repaired torn cache store %s (%s)",
                        self.path, state.contents.tail_error,
                    )
                return status
        except CacheLockTimeout as exc:
            log.warning("cache store %s not published: %s", self.path, exc)
            return SnapshotStatus(
                "save", self.path, "locked",
                error=str(exc), lock_wait_seconds=round(exc.waited, 3),
            )
        except OSError as exc:
            log.warning("could not persist cache store %s: %s", self.path, exc)
            return SnapshotStatus("save", self.path, "write-failed", error=str(exc))

    # -- loading -------------------------------------------------------------

    def load(
        self, lock_timeout: float | None = None
    ) -> tuple[dict[str, dict] | None, SnapshotStatus]:
        """``(entries, status)`` — the full store contents under the lock.

        ``entries`` is ``None`` unless the status is ``loaded``.  Statuses
        mirror the historical snapshot loader: ``missing``, ``unreadable``,
        ``version-mismatch`` (legacy pickles keep their exact warnings, so a
        stale PR 2–5 snapshot is reported the same way it always was),
        ``locked`` on lock timeout, plus ``loaded``.
        """
        if not os.path.exists(self.path):
            return None, SnapshotStatus("load", self.path, "missing")
        try:
            # Same envelope as real I/O failures: an injected fault loads as
            # an `unreadable` status, so runs degrade to cold instead of dying.
            inject(SITE_SNAPSHOT_LOAD)
            with self.lock.acquire(timeout=lock_timeout):
                state = self._read_disk()
        except CacheLockTimeout as exc:
            log.warning("cache store %s not loaded: %s", self.path, exc)
            return None, SnapshotStatus(
                "load", self.path, "locked",
                error=str(exc), lock_wait_seconds=round(exc.waited, 3),
            )
        except OSError as exc:
            log.warning(
                "ignoring unreadable cache snapshot %s (expected format v%d): %s",
                self.path, CACHE_FORMAT_VERSION, exc,
            )
            return None, SnapshotStatus("load", self.path, "unreadable", error=str(exc))
        wait = round(self.lock.last_wait, 3)
        if state.legacy_status == "unreadable":
            log.warning(
                "ignoring unreadable cache snapshot %s (expected format v%d): %s",
                self.path, CACHE_FORMAT_VERSION, state.legacy_error,
            )
            return None, SnapshotStatus(
                "load", self.path, "unreadable",
                error=state.legacy_error, lock_wait_seconds=wait,
            )
        if state.legacy_status == "version-mismatch":
            log.warning(
                "ignoring cache snapshot %s: format version %r != expected %d "
                "(delete the file or rerun with the matching version to rebuild it)",
                self.path, state.legacy_version, CACHE_FORMAT_VERSION,
            )
            return None, SnapshotStatus(
                "load", self.path, "version-mismatch",
                snapshot_version=state.legacy_version, lock_wait_seconds=wait,
            )
        contents = state.contents
        if contents.frames == 0 and contents.skipped_frames > 0:
            log.warning(
                "ignoring cache store %s: format version %r != expected %d",
                self.path, contents.wrong_version, CACHE_FORMAT_VERSION,
            )
            return None, SnapshotStatus(
                "load", self.path, "version-mismatch",
                snapshot_version=contents.wrong_version, lock_wait_seconds=wait,
            )
        if contents.frames == 0 and contents.tail_error is not None:
            log.warning(
                "ignoring unreadable cache store %s: %s", self.path, contents.tail_error
            )
            return None, SnapshotStatus(
                "load", self.path, "unreadable",
                error=contents.tail_error, lock_wait_seconds=wait,
            )
        status = SnapshotStatus(
            "load", self.path, "loaded",
            store_entries={name: len(values) for name, values in contents.entries.items()},
            lock_wait_seconds=wait,
        )
        if contents.tail_error is not None:
            # Everything up to the torn tail loaded; say so without failing.
            status.error = f"ignored torn tail ({contents.tail_error})"
            log.warning(
                "cache store %s has a torn tail (%s); loaded %d complete frame(s)",
                self.path, contents.tail_error, contents.frames,
            )
        return contents.entries, status

    def read_new_entries(self) -> dict[str, dict]:
        """Frames appended since the last call (lock-free incremental refresh).

        Used by the sharded executor's live sync at wave boundaries.  Reading
        without the lock is safe because frames are self-delimiting: a torn
        or in-flight tail simply isn't consumed yet (the offset stays put and
        the next refresh retries), and a concurrent compaction that rewrote
        the file is detected — offset beyond EOF or no longer on a frame
        boundary — and answered by re-reading from the start, which is
        idempotent for cache merges.
        """
        try:
            with open(self.path, "rb") as handle:
                buffer = handle.read()
        except OSError:
            return {}
        if not buffer.startswith(FRAME_MAGIC):
            return {}
        start = self._refresh_offset if self._refresh_offset <= len(buffer) else 0
        contents = _parse_frames(buffer, start=start)
        if start > 0 and contents.frames == 0 and contents.tail_error is not None:
            contents = _parse_frames(buffer)  # compacted under us: start over
        if contents.end_offset > 0:
            self._refresh_offset = contents.end_offset
        return contents.entries

    # -- maintenance / inspection --------------------------------------------

    def entry_counts(self) -> dict[str, int] | None:
        """Per-cache entry totals (lock-free), or ``None`` when absent/foreign."""
        try:
            with open(self.path, "rb") as handle:
                buffer = handle.read()
        except OSError:
            return None
        if not buffer.startswith(FRAME_MAGIC):
            return None
        contents = _parse_frames(buffer)
        return {name: len(values) for name, values in contents.entries.items()}

    def lock_info(self) -> dict | None:
        """The current lock holder's info (pid/host/time), or ``None`` if free."""
        return self.lock.read_info()

    def clear(self) -> bool:
        """Delete the store file and break its lock; returns whether it existed."""
        existed = os.path.exists(self.path)
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self.lock.break_lock()
        self._refresh_offset = 0
        return existed
