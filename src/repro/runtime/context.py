"""`RuntimeContext`: the explicit, scoped owner of caches, store and RNG.

A :class:`RuntimeContext` bundles everything that used to be process-global
state: a frozen :class:`~repro.runtime.config.RuntimeConfig`, a
:class:`~repro.runtime.caches.CacheSet` (reward/baseline/compile/plan), the
:class:`~repro.results.ArtifactStore` rooted at the config's results
directory, and a root RNG seeded from the config.  Two contexts with
different dtypes, budgets or shard counts coexist in one process with fully
isolated caches — the property every future scaling direction (multi-host
sharding, async serving, shared pools) builds on.

Resolution rules:

* **Explicit beats ambient** — APIs take an optional ``runtime`` argument;
  passing a context always wins.
* **Ambient** — :func:`current` returns the innermost context activated via
  ``with ctx.activate():`` (a :mod:`contextvars` variable, so concurrent
  threads each see their own activation).
* **Edge fallback** — with nothing active, :func:`current` returns the
  process-default context, whose config is (re)parsed from the ``REPRO_*``
  environment.  This is the compatibility edge for code and tests that still
  steer through environment variables; after the process has activated an
  explicit context, fallback env reads emit a ``DeprecationWarning`` once
  per knob.

Contexts are picklable (config + caches; the store and RNG are recreated
lazily), which is how the sharded executor boots a worker: the context is
shipped into the forked process, activated there, and its cache deltas are
merged back into the parent — replacing the old implicit env inheritance.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
from typing import TYPE_CHECKING, Any, Hashable, Callable, Iterator, TypeVar

from repro.runtime.caches import CacheSet, SnapshotStatus
from repro.runtime.config import ENV_KNOBS, RuntimeConfig, note_explicit_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.results.store import ArtifactStore

T = TypeVar("T")

_ACTIVE: contextvars.ContextVar["RuntimeContext | None"] = contextvars.ContextVar(
    "repro-runtime-context", default=None
)


class RuntimeContext:
    """One scoped runtime: config + caches + artifact store + root RNG."""

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        caches: CacheSet | None = None,
        store: "ArtifactStore | None" = None,
    ) -> None:
        self.config = config if config is not None else RuntimeConfig()
        self.caches = caches if caches is not None else CacheSet()
        #: structured ShardFailure diagnostics the supervised executor
        #: recorded while running under this context (see
        #: :meth:`record_shard_failures`); the experiment runner drains them
        #: into the run record's environment.
        self.shard_failures: list = []
        #: batched reward-evaluation hook installed by the serving layer
        #: (see :mod:`repro.serve`): ``(pending, reward_fn, cache_context,
        #: runtime) -> Mapping[signature, reward]``.  When set, MCTS hands
        #: each frontier wave to it instead of evaluating serially or
        #: building its own sharded fan-out, which is how concurrent searches
        #: coalesce their waves.  Deliberately not pickled: a shard worker
        #: must never recurse into the parent's coalescer.
        self.wave_evaluator: Callable | None = None
        #: how many contexts :meth:`derive` has produced from this one — the
        #: serving layer's per-request accounting (`repro serve` reports it).
        self.derived_count = 0
        self._derived_ids = itertools.count(1)
        self._store = store
        self._shared_store = None
        self._rng = None
        self._param_rng = None

    def __getstate__(self) -> dict:
        # The store and RNGs are recreated lazily on the other side; config and
        # caches are the identity of the context.  Failure diagnostics are
        # parent-side observations and stay behind.
        return {"config": self.config, "caches": self.caches}

    def __setstate__(self, state: dict) -> None:
        self.config = state["config"]
        self.caches = state["caches"]
        self.shard_failures = []
        self.wave_evaluator = None
        self.derived_count = 0
        self._derived_ids = itertools.count(1)
        self._store = None
        self._shared_store = None
        self._rng = None
        self._param_rng = None

    def __repr__(self) -> str:
        tag = "default" if self is _DEFAULT else "explicit"
        return (
            f"RuntimeContext({tag}, dtype={self.config.dtype_name()}, "
            f"smoke={self.config.smoke}, shards={self.config.shards}, "
            f"caches={self.caches.sizes()})"
        )

    # -- owned resources -----------------------------------------------------

    @property
    def store(self) -> "ArtifactStore":
        """The artifact store rooted at ``config.results_dir`` (created lazily)."""
        if self._store is None:
            from repro.results.store import ArtifactStore  # lazy: avoids a cycle

            self._store = ArtifactStore(self.config.results_dir)
        return self._store

    @property
    def shared_store(self):
        """The process-safe shared cache store behind :meth:`snapshot_path`.

        Created lazily (and re-created if the snapshot path moves with
        ``results_dir``); holds no open resources, just the path, the lock
        object and the incremental-refresh offset used by live sync.
        """
        if self._shared_store is None or self._shared_store.path != self.snapshot_path():
            from repro.runtime.store import SharedCacheStore  # lazy: avoids a cycle

            self._shared_store = SharedCacheStore(
                self.snapshot_path(), lock_timeout=self.config.cache_lock_timeout
            )
        return self._shared_store

    @property
    def rng(self):
        """The context's root numpy RNG, seeded from ``config.seed``."""
        if self._rng is None:
            import numpy as np  # lazy: keep the runtime package import-light

            self._rng = np.random.default_rng(self.config.seed)
        return self._rng

    @property
    def param_rng(self):
        """The parameter-initialization RNG (layers, dropout, ``Tensor.randn``).

        Separate from :attr:`rng` so structural draws (search, datasets)
        never perturb the parameter stream.  Evaluators pin it with
        :meth:`reseed_param_rng` before each proxy training, which is what
        makes a reward a pure function of the candidate rather than of how
        many models were built earlier in the process.
        """
        if self._param_rng is None:
            import numpy as np  # lazy: keep the runtime package import-light

            self._param_rng = np.random.default_rng(self.config.seed)
        return self._param_rng

    def reseed_param_rng(self, seed: int) -> None:
        """Reset the parameter-initialization stream to a known seed."""
        import numpy as np  # lazy: keep the runtime package import-light

        self._param_rng = np.random.default_rng(seed)

    # -- scoping -------------------------------------------------------------

    @contextlib.contextmanager
    def activate(self, adopt: bool = True) -> Iterator["RuntimeContext"]:
        """Make this context the ambient one within the ``with`` block.

        Activation is per-thread (a :mod:`contextvars` variable): two threads
        can each activate a different context and run concurrently with zero
        cache cross-talk.  Activating a non-default context marks the process
        as having adopted the explicit API, which arms the env-var
        deprecation warnings — except with ``adopt=False``, used by the
        machinery that activates contexts *on behalf of* possibly env-driven
        callers (the experiment runner, the CLI edge, shard workers): those
        activations must not turn a pure env-var user's steering into a
        warning.
        """
        if adopt and self is not _DEFAULT:
            note_explicit_context()
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    def derive(self, **overrides: Any) -> "RuntimeContext":
        """A context with overridden config but **shared** caches and store.

        This is what the experiment runner uses per run: budgets change, the
        warm caches stay (cache keys already encode every knob that affects a
        cached value, so sharing is safe).  Overriding ``results_dir`` drops
        the materialized store so the derived context re-roots it.

        The :attr:`wave_evaluator` hook carries over — a request context the
        serving layer derived stays coalesced when the runner derives the
        run context from it — and :attr:`derived_count` tracks how many
        contexts this one has fathered (``itertools.count`` so concurrent
        request threads never lose an increment).
        """
        store = None if "results_dir" in overrides else self._store
        derived = RuntimeContext(
            self.config.with_overrides(**overrides), caches=self.caches, store=store
        )
        derived.wave_evaluator = self.wave_evaluator
        self.derived_count = next(self._derived_ids)
        return derived

    def isolated(self, **overrides: Any) -> "RuntimeContext":
        """A context with overridden config and **fresh, empty** caches."""
        return RuntimeContext(self.config.with_overrides(**overrides))

    # -- cache operations ----------------------------------------------------

    def cached_reward(
        self, context: Hashable, signature: str, compute: Callable[[], float]
    ) -> float:
        """The reward of one candidate under one evaluation context, computed once."""
        return self.caches.reward.get_or_compute(
            (context, signature), compute, enabled=self.config.eval_cache
        )

    def cached_baseline(self, context: Hashable, compute: Callable[[], T]) -> T:
        """A baseline (unsubstituted) metric under one context, computed once."""
        return self.caches.baseline.get_or_compute(
            context, compute, enabled=self.config.eval_cache
        )

    def cached_compile(self, key: Hashable, compute: Callable[[], T]) -> T:
        """A ``TuneResult`` for one (backend config, program, target) key."""
        return self.caches.compile_.get_or_compute(
            key, compute, enabled=self.config.eval_cache
        )

    def cached_plan(self, key: Hashable, compute: Callable[[], T]) -> T:
        """A compiled execution plan for one (signature, binding, shapes) key."""
        return self.caches.plan.get_or_compute(
            key, compute, enabled=self.config.eval_cache
        )

    # -- shard-failure diagnostics -------------------------------------------

    #: cap on retained failure diagnostics — a pathological chaos loop must
    #: not grow a long-lived (e.g. default) context without bound.
    _MAX_SHARD_FAILURES = 1000

    def record_shard_failures(self, failures) -> None:
        """Append supervised-executor failure diagnostics to this context."""
        self.shard_failures.extend(failures)
        overflow = len(self.shard_failures) - self._MAX_SHARD_FAILURES
        if overflow > 0:
            del self.shard_failures[:overflow]

    def drain_shard_failures(self) -> list:
        """Return and clear the recorded failures (runner: once per run)."""
        drained = list(self.shard_failures)
        self.shard_failures.clear()
        return drained

    # -- snapshot persistence ------------------------------------------------

    def snapshot_path(self) -> str:
        """Where this context's cache snapshot lives (inside the store)."""
        return str(self.store.cache_path)

    def library_path(self) -> str:
        """Root directory of the ahead-of-time graph library (may not exist).

        Resolved from ``config.library_dir`` (``REPRO_LIBRARY_DIR``), falling
        back to ``<results_dir>/library`` — the same derivation
        :mod:`repro.library.store` uses to place build artifacts.
        """
        return self.config.library_root()

    def save_caches(
        self, path: str | None = None, max_entries: int | None = None
    ) -> SnapshotStatus:
        """Persist this context's caches (default path: the store's snapshot)."""
        cap = max_entries if max_entries is not None else self.config.cache_max_entries
        return self.caches.save_snapshot(
            path if path is not None else self.snapshot_path(),
            max_entries=cap,
            enabled=self.config.eval_cache,
            lock_timeout=self.config.cache_lock_timeout,
        )

    def load_caches(self, path: str | None = None) -> SnapshotStatus:
        """Merge a persisted snapshot into this context's caches."""
        return self.caches.load_snapshot(
            path if path is not None else self.snapshot_path(),
            enabled=self.config.eval_cache,
            lock_timeout=self.config.cache_lock_timeout,
        )


# ---------------------------------------------------------------------------
# Ambient resolution
# ---------------------------------------------------------------------------

_DEFAULT: RuntimeContext | None = None
_DEFAULT_ENV_SNAPSHOT: tuple | None = None


_ENV_VARIABLES = tuple(ENV_KNOBS.values())
#: CPython's posix os.environ keeps encoded keys in ``_data``; going through
#: that dict directly turns the per-call snapshot into plain dict lookups.
#: This sits on the ambient hot path (every ``current()`` with no activation,
#: i.e. every tensor allocation's dtype resolution), so the ~10x matters.
_ENV_VARIABLES_RAW = tuple(os.environ.encodekey(v) for v in _ENV_VARIABLES) if hasattr(
    os.environ, "encodekey"
) else None


def _env_snapshot() -> tuple:
    data = getattr(os.environ, "_data", None)
    if data is not None and _ENV_VARIABLES_RAW is not None:
        return tuple(data.get(variable) for variable in _ENV_VARIABLES_RAW)
    return tuple(os.environ.get(variable) for variable in _ENV_VARIABLES)


def default_context() -> RuntimeContext:
    """The process-default context (config parsed from the environment).

    The context object — and crucially its :class:`CacheSet` — is created
    once per process; only the *config* is re-parsed when the relevant
    ``REPRO_*`` variables change, so environment-driven code (the historical
    API, still used by tests via ``monkeypatch.setenv``) sees knob changes
    immediately without ever losing cache warmth.
    """
    global _DEFAULT, _DEFAULT_ENV_SNAPSHOT
    snapshot = _env_snapshot()
    if _DEFAULT is None:
        # First build = the process edge; reading the environment here is the
        # supported path and never warns.
        _DEFAULT = RuntimeContext(RuntimeConfig.from_env())
        _DEFAULT_ENV_SNAPSHOT = snapshot
    elif snapshot != _DEFAULT_ENV_SNAPSHOT:
        # A REPRO_* variable changed *mid-process*.  That is the deprecated
        # steering pattern once the process has adopted explicit contexts, so
        # this refresh is the one place the fallback warning can fire.
        _DEFAULT.config = RuntimeConfig.from_env(warn_on_fallback=True)
        _DEFAULT._store = None  # results_dir may have changed
        _DEFAULT._shared_store = None
        _DEFAULT._rng = None  # seed may have changed
        _DEFAULT._param_rng = None
        _DEFAULT_ENV_SNAPSHOT = snapshot
    return _DEFAULT


def current() -> RuntimeContext:
    """The ambient context: innermost activation, else the process default."""
    context = _ACTIVE.get()
    return context if context is not None else default_context()
